// Package wire implements the BGP-4 message encoding of RFC 4271 with the
// extensions the measurement substrate needs: the 4-octet AS number
// capability (RFC 6793, always negotiated by this implementation) and
// multiprotocol IPv6 NLRI via MP_REACH/MP_UNREACH (RFC 4760).
//
// The codec is deliberately strict on decode — malformed lengths, truncated
// attributes, and bad markers are errors, never silently repaired — because
// the collector built on it must not mistake corrupt data for routes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"manrsmeter/internal/netx"
)

// Message type codes from RFC 4271 §4.1.
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Header and message size limits from RFC 4271.
const (
	HeaderLen  = 19
	MaxMsgLen  = 4096
	markerByte = 0xFF
)

// Common errors surfaced by the decoder.
var (
	ErrBadMarker   = errors.New("bgp: header marker is not all-ones")
	ErrBadLength   = errors.New("bgp: message length out of bounds")
	ErrTruncated   = errors.New("bgp: message truncated")
	ErrUnknownType = errors.New("bgp: unknown message type")
)

// Message is any BGP message body.
type Message interface {
	// Type returns the RFC 4271 message type code.
	Type() byte
	encodeBody(b []byte) ([]byte, error)
	decodeBody(b []byte) error
}

// Capability codes used in OPEN optional parameters.
const (
	CapMultiprotocol = 1  // RFC 4760
	CapFourOctetAS   = 65 // RFC 6793
)

// Capability is one BGP capability TLV.
type Capability struct {
	Code  byte
	Value []byte
}

// Open is the OPEN message (RFC 4271 §4.2).
type Open struct {
	Version      byte
	AS           uint16 // AS_TRANS (23456) when the real ASN needs 4 octets
	HoldTime     uint16
	BGPID        [4]byte
	Capabilities []Capability
}

// ASTrans is the 2-octet placeholder ASN from RFC 6793.
const ASTrans uint16 = 23456

// NewOpen builds an OPEN announcing a 4-octet ASN with the standard
// capabilities (4-octet AS, multiprotocol IPv4+IPv6 unicast).
func NewOpen(asn uint32, holdTime uint16, bgpID [4]byte) *Open {
	as2 := ASTrans
	if asn <= 0xFFFF {
		as2 = uint16(asn)
	}
	four := make([]byte, 4)
	binary.BigEndian.PutUint32(four, asn)
	return &Open{
		Version:  4,
		AS:       as2,
		HoldTime: holdTime,
		BGPID:    bgpID,
		Capabilities: []Capability{
			{Code: CapMultiprotocol, Value: []byte{0, 1, 0, 1}}, // AFI 1 (v4), SAFI 1
			{Code: CapMultiprotocol, Value: []byte{0, 2, 0, 1}}, // AFI 2 (v6), SAFI 1
			{Code: CapFourOctetAS, Value: four},
		},
	}
}

// FourOctetAS returns the ASN from the 4-octet-AS capability, or the
// 2-octet field when the capability is absent.
func (o *Open) FourOctetAS() uint32 {
	for _, c := range o.Capabilities {
		if c.Code == CapFourOctetAS && len(c.Value) == 4 {
			return binary.BigEndian.Uint32(c.Value)
		}
	}
	return uint32(o.AS)
}

// Type implements Message.
func (o *Open) Type() byte { return TypeOpen }

func (o *Open) encodeBody(b []byte) ([]byte, error) {
	b = append(b, o.Version)
	b = binary.BigEndian.AppendUint16(b, o.AS)
	b = binary.BigEndian.AppendUint16(b, o.HoldTime)
	b = append(b, o.BGPID[:]...)
	// Optional parameters: one type-2 (capabilities) parameter per capability.
	var opt []byte
	for _, c := range o.Capabilities {
		if len(c.Value) > 255-2 {
			return nil, fmt.Errorf("bgp: capability %d too long", c.Code)
		}
		opt = append(opt, 2, byte(len(c.Value)+2), c.Code, byte(len(c.Value)))
		opt = append(opt, c.Value...)
	}
	if len(opt) > 255 {
		return nil, errors.New("bgp: optional parameters exceed 255 bytes")
	}
	b = append(b, byte(len(opt)))
	return append(b, opt...), nil
}

func (o *Open) decodeBody(b []byte) error {
	if len(b) < 10 {
		return ErrTruncated
	}
	o.Version = b[0]
	o.AS = binary.BigEndian.Uint16(b[1:3])
	o.HoldTime = binary.BigEndian.Uint16(b[3:5])
	copy(o.BGPID[:], b[5:9])
	optLen := int(b[9])
	opt := b[10:]
	if len(opt) != optLen {
		return fmt.Errorf("%w: optional parameter length %d vs %d available", ErrBadLength, optLen, len(opt))
	}
	o.Capabilities = nil
	for len(opt) > 0 {
		if len(opt) < 2 {
			return ErrTruncated
		}
		ptype, plen := opt[0], int(opt[1])
		if len(opt) < 2+plen {
			return ErrTruncated
		}
		pval := opt[2 : 2+plen]
		opt = opt[2+plen:]
		if ptype != 2 { // not a capabilities parameter; ignore
			continue
		}
		for len(pval) > 0 {
			if len(pval) < 2 {
				return ErrTruncated
			}
			code, clen := pval[0], int(pval[1])
			if len(pval) < 2+clen {
				return ErrTruncated
			}
			o.Capabilities = append(o.Capabilities, Capability{Code: code, Value: append([]byte(nil), pval[2:2+clen]...)})
			pval = pval[2+clen:]
		}
	}
	return nil
}

// Keepalive is the KEEPALIVE message: a bare header.
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() byte                          { return TypeKeepalive }
func (*Keepalive) encodeBody(b []byte) ([]byte, error) { return b, nil }
func (*Keepalive) decodeBody(b []byte) error {
	if len(b) != 0 {
		return fmt.Errorf("%w: keepalive with body", ErrBadLength)
	}
	return nil
}

// Notification is the NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	Code    byte
	Subcode byte
	Data    []byte
}

// Type implements Message.
func (*Notification) Type() byte { return TypeNotification }

func (n *Notification) encodeBody(b []byte) ([]byte, error) {
	b = append(b, n.Code, n.Subcode)
	return append(b, n.Data...), nil
}

func (n *Notification) decodeBody(b []byte) error {
	if len(b) < 2 {
		return ErrTruncated
	}
	n.Code, n.Subcode = b[0], b[1]
	n.Data = append([]byte(nil), b[2:]...)
	return nil
}

// Error renders the notification as an error string.
func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification code %d subcode %d", n.Code, n.Subcode)
}

// Path attribute type codes.
const (
	AttrOrigin          = 1
	AttrASPath          = 2
	AttrNextHop         = 3
	AttrMED             = 4
	AttrLocalPref       = 5
	AttrAtomicAggregate = 6
	AttrAggregator      = 7
	AttrCommunities     = 8
	AttrMPReachNLRI     = 14
	AttrMPUnreachNLRI   = 15
)

// ORIGIN values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS path segment types.
const (
	ASSet      = 1
	ASSequence = 2
)

// ASPathSegment is one segment of an AS_PATH attribute. This codec always
// uses 4-octet ASNs on the wire (the 4-octet capability is mandatory in
// this implementation).
type ASPathSegment struct {
	Type byte
	ASNs []uint32
}

// Update is the UPDATE message. IPv4 routes ride the classic NLRI fields;
// IPv6 routes ride MP_REACH/MP_UNREACH attributes.
type Update struct {
	Withdrawn   []netx.Prefix // IPv4
	Origin      byte
	ASPath      []ASPathSegment
	NextHop     netip.Addr // IPv4 next hop; zero when no v4 NLRI
	MED         uint32
	HasMED      bool
	LocalPref   uint32
	HasLocal    bool
	Communities []uint32
	// ATOMIC_AGGREGATE / AGGREGATOR (RFC 4271 §5.1.6–5.1.7, with the
	// 4-octet AGGREGATOR ASN of RFC 6793).
	AtomicAggregate bool
	AggregatorASN   uint32
	AggregatorAddr  netip.Addr
	HasAggregator   bool
	NLRI            []netx.Prefix // IPv4
	// IPv6 via RFC 4760 attributes.
	MPNextHop netip.Addr
	MPReach   []netx.Prefix
	MPUnreach []netx.Prefix
}

// Type implements Message.
func (*Update) Type() byte { return TypeUpdate }

// OriginAS returns the rightmost ASN of the AS path — the route's origin —
// and false for an empty path.
func (u *Update) OriginAS() (uint32, bool) {
	for i := len(u.ASPath) - 1; i >= 0; i-- {
		seg := u.ASPath[i]
		if seg.Type == ASSequence && len(seg.ASNs) > 0 {
			return seg.ASNs[len(seg.ASNs)-1], true
		}
		if seg.Type == ASSet && len(seg.ASNs) > 0 {
			// Origin from an AS_SET is ambiguous; report the first member.
			return seg.ASNs[0], true
		}
	}
	return 0, false
}

// PathASNs flattens the AS path into a sequence of ASNs (sets contribute
// their members in order).
func (u *Update) PathASNs() []uint32 {
	var out []uint32
	for _, seg := range u.ASPath {
		out = append(out, seg.ASNs...)
	}
	return out
}

func encodePrefix(b []byte, p netx.Prefix) []byte {
	b = append(b, byte(p.Bits()))
	nbytes := (p.Bits() + 7) / 8
	if p.Is6() {
		a := p.Addr().As16()
		return append(b, a[:nbytes]...)
	}
	a := p.Addr().As4()
	return append(b, a[:nbytes]...)
}

func decodePrefix(b []byte, v6 bool) (netx.Prefix, []byte, error) {
	if len(b) < 1 {
		return netx.Prefix{}, nil, ErrTruncated
	}
	bits := int(b[0])
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	if bits > maxBits {
		return netx.Prefix{}, nil, fmt.Errorf("%w: prefix length %d", ErrBadLength, bits)
	}
	nbytes := (bits + 7) / 8
	if len(b) < 1+nbytes {
		return netx.Prefix{}, nil, ErrTruncated
	}
	var addr netip.Addr
	if v6 {
		var a [16]byte
		copy(a[:], b[1:1+nbytes])
		addr = netip.AddrFrom16(a)
	} else {
		var a [4]byte
		copy(a[:], b[1:1+nbytes])
		addr = netip.AddrFrom4(a)
	}
	p, err := netx.PrefixFrom(addr, bits)
	if err != nil {
		return netx.Prefix{}, nil, err
	}
	return p, b[1+nbytes:], nil
}

// attribute flag bits
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

func appendAttr(b []byte, flags, typ byte, val []byte) []byte {
	if len(val) > 255 {
		flags |= flagExtLen
		b = append(b, flags, typ)
		b = binary.BigEndian.AppendUint16(b, uint16(len(val)))
	} else {
		b = append(b, flags, typ, byte(len(val)))
	}
	return append(b, val...)
}

func (u *Update) encodeBody(b []byte) ([]byte, error) {
	// Withdrawn routes.
	var wd []byte
	for _, p := range u.Withdrawn {
		if p.Is6() {
			return nil, errors.New("bgp: IPv6 withdraw must use MPUnreach")
		}
		wd = encodePrefix(wd, p)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(wd)))
	b = append(b, wd...)

	// Path attributes.
	var attrs []byte
	hasRoutes := len(u.NLRI) > 0 || len(u.MPReach) > 0
	if hasRoutes {
		attrs = appendAttr(attrs, flagTransitive, AttrOrigin, []byte{u.Origin})
		var pa []byte
		for _, seg := range u.ASPath {
			if len(seg.ASNs) > 255 {
				return nil, errors.New("bgp: AS path segment too long")
			}
			pa = append(pa, seg.Type, byte(len(seg.ASNs)))
			for _, asn := range seg.ASNs {
				pa = binary.BigEndian.AppendUint32(pa, asn)
			}
		}
		attrs = appendAttr(attrs, flagTransitive, AttrASPath, pa)
	}
	if len(u.NLRI) > 0 {
		if !u.NextHop.Is4() {
			return nil, errors.New("bgp: IPv4 NLRI requires an IPv4 next hop")
		}
		nh := u.NextHop.As4()
		attrs = appendAttr(attrs, flagTransitive, AttrNextHop, nh[:])
	}
	if u.HasMED {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], u.MED)
		attrs = appendAttr(attrs, flagOptional, AttrMED, v[:])
	}
	if u.HasLocal {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], u.LocalPref)
		attrs = appendAttr(attrs, flagTransitive, AttrLocalPref, v[:])
	}
	if u.AtomicAggregate {
		attrs = appendAttr(attrs, flagTransitive, AttrAtomicAggregate, nil)
	}
	if u.HasAggregator {
		if !u.AggregatorAddr.Is4() {
			return nil, errors.New("bgp: AGGREGATOR requires an IPv4 address")
		}
		var v [8]byte
		binary.BigEndian.PutUint32(v[:4], u.AggregatorASN)
		a := u.AggregatorAddr.As4()
		copy(v[4:], a[:])
		attrs = appendAttr(attrs, flagOptional|flagTransitive, AttrAggregator, v[:])
	}
	if len(u.Communities) > 0 {
		var v []byte
		for _, c := range u.Communities {
			v = binary.BigEndian.AppendUint32(v, c)
		}
		attrs = appendAttr(attrs, flagOptional|flagTransitive, AttrCommunities, v)
	}
	if len(u.MPReach) > 0 {
		if !u.MPNextHop.Is6() || u.MPNextHop.Is4In6() {
			return nil, errors.New("bgp: MPReach requires an IPv6 next hop")
		}
		var v []byte
		v = binary.BigEndian.AppendUint16(v, 2) // AFI IPv6
		v = append(v, 1)                        // SAFI unicast
		nh := u.MPNextHop.As16()
		v = append(v, 16)
		v = append(v, nh[:]...)
		v = append(v, 0) // reserved
		for _, p := range u.MPReach {
			if !p.Is6() {
				return nil, errors.New("bgp: MPReach NLRI must be IPv6")
			}
			v = encodePrefix(v, p)
		}
		attrs = appendAttr(attrs, flagOptional, AttrMPReachNLRI, v)
	}
	if len(u.MPUnreach) > 0 {
		var v []byte
		v = binary.BigEndian.AppendUint16(v, 2)
		v = append(v, 1)
		for _, p := range u.MPUnreach {
			if !p.Is6() {
				return nil, errors.New("bgp: MPUnreach NLRI must be IPv6")
			}
			v = encodePrefix(v, p)
		}
		attrs = appendAttr(attrs, flagOptional, AttrMPUnreachNLRI, v)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(attrs)))
	b = append(b, attrs...)

	for _, p := range u.NLRI {
		if p.Is6() {
			return nil, errors.New("bgp: IPv6 NLRI must use MPReach")
		}
		b = encodePrefix(b, p)
	}
	return b, nil
}

func (u *Update) decodeBody(b []byte) error {
	*u = Update{}
	if len(b) < 2 {
		return ErrTruncated
	}
	wdLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < wdLen {
		return ErrTruncated
	}
	wd := b[:wdLen]
	b = b[wdLen:]
	for len(wd) > 0 {
		p, rest, err := decodePrefix(wd, false)
		if err != nil {
			return err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		wd = rest
	}
	if len(b) < 2 {
		return ErrTruncated
	}
	attrLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < attrLen {
		return ErrTruncated
	}
	attrs := b[:attrLen]
	b = b[attrLen:]
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return ErrTruncated
		}
		flags, typ := attrs[0], attrs[1]
		var alen int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return ErrTruncated
			}
			alen = int(binary.BigEndian.Uint16(attrs[2:4]))
			attrs = attrs[4:]
		} else {
			alen = int(attrs[2])
			attrs = attrs[3:]
		}
		if len(attrs) < alen {
			return ErrTruncated
		}
		val := attrs[:alen]
		attrs = attrs[alen:]
		if err := u.decodeAttr(typ, val); err != nil {
			return err
		}
	}
	for len(b) > 0 {
		p, rest, err := decodePrefix(b, false)
		if err != nil {
			return err
		}
		u.NLRI = append(u.NLRI, p)
		b = rest
	}
	return nil
}

func (u *Update) decodeAttr(typ byte, val []byte) error {
	switch typ {
	case AttrOrigin:
		if len(val) != 1 {
			return fmt.Errorf("%w: ORIGIN length %d", ErrBadLength, len(val))
		}
		u.Origin = val[0]
	case AttrASPath:
		for len(val) > 0 {
			if len(val) < 2 {
				return ErrTruncated
			}
			segType, count := val[0], int(val[1])
			val = val[2:]
			if len(val) < count*4 {
				return ErrTruncated
			}
			seg := ASPathSegment{Type: segType}
			for i := 0; i < count; i++ {
				seg.ASNs = append(seg.ASNs, binary.BigEndian.Uint32(val[i*4:]))
			}
			val = val[count*4:]
			u.ASPath = append(u.ASPath, seg)
		}
	case AttrNextHop:
		if len(val) != 4 {
			return fmt.Errorf("%w: NEXT_HOP length %d", ErrBadLength, len(val))
		}
		u.NextHop = netip.AddrFrom4([4]byte(val))
	case AttrMED:
		if len(val) != 4 {
			return fmt.Errorf("%w: MED length %d", ErrBadLength, len(val))
		}
		u.MED = binary.BigEndian.Uint32(val)
		u.HasMED = true
	case AttrLocalPref:
		if len(val) != 4 {
			return fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadLength, len(val))
		}
		u.LocalPref = binary.BigEndian.Uint32(val)
		u.HasLocal = true
	case AttrAtomicAggregate:
		if len(val) != 0 {
			return fmt.Errorf("%w: ATOMIC_AGGREGATE length %d", ErrBadLength, len(val))
		}
		u.AtomicAggregate = true
	case AttrAggregator:
		if len(val) != 8 {
			return fmt.Errorf("%w: AGGREGATOR length %d", ErrBadLength, len(val))
		}
		u.AggregatorASN = binary.BigEndian.Uint32(val[:4])
		u.AggregatorAddr = netip.AddrFrom4([4]byte(val[4:8]))
		u.HasAggregator = true
	case AttrCommunities:
		if len(val)%4 != 0 {
			return fmt.Errorf("%w: COMMUNITIES length %d", ErrBadLength, len(val))
		}
		for i := 0; i < len(val); i += 4 {
			u.Communities = append(u.Communities, binary.BigEndian.Uint32(val[i:]))
		}
	case AttrMPReachNLRI:
		if len(val) < 5 {
			return ErrTruncated
		}
		afi := binary.BigEndian.Uint16(val)
		safi := val[2]
		nhLen := int(val[3])
		if afi != 2 || safi != 1 {
			return fmt.Errorf("bgp: unsupported MP AFI/SAFI %d/%d", afi, safi)
		}
		if len(val) < 4+nhLen+1 {
			return ErrTruncated
		}
		if nhLen == 16 {
			u.MPNextHop = netip.AddrFrom16([16]byte(val[4 : 4+nhLen]))
		}
		rest := val[4+nhLen+1:]
		for len(rest) > 0 {
			p, r, err := decodePrefix(rest, true)
			if err != nil {
				return err
			}
			u.MPReach = append(u.MPReach, p)
			rest = r
		}
	case AttrMPUnreachNLRI:
		if len(val) < 3 {
			return ErrTruncated
		}
		afi := binary.BigEndian.Uint16(val)
		safi := val[2]
		if afi != 2 || safi != 1 {
			return fmt.Errorf("bgp: unsupported MP AFI/SAFI %d/%d", afi, safi)
		}
		rest := val[3:]
		for len(rest) > 0 {
			p, r, err := decodePrefix(rest, true)
			if err != nil {
				return err
			}
			u.MPUnreach = append(u.MPUnreach, p)
			rest = r
		}
	default:
		// Unknown attributes are skipped (already consumed by caller).
	}
	return nil
}

// Encode serializes msg with its header. It returns an error when the
// body exceeds the 4096-byte message limit.
func Encode(msg Message) ([]byte, error) {
	b := make([]byte, HeaderLen, 64)
	for i := 0; i < 16; i++ {
		b[i] = markerByte
	}
	b[18] = msg.Type()
	b, err := msg.encodeBody(b)
	if err != nil {
		return nil, err
	}
	if len(b) > MaxMsgLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadLength, len(b))
	}
	binary.BigEndian.PutUint16(b[16:18], uint16(len(b)))
	return b, nil
}

// Decode parses one complete message from b, which must be exactly one
// message as framed by its header length field.
func Decode(b []byte) (Message, error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	for i := 0; i < 16; i++ {
		if b[i] != markerByte {
			return nil, ErrBadMarker
		}
	}
	length := int(binary.BigEndian.Uint16(b[16:18]))
	if length < HeaderLen || length > MaxMsgLen || length != len(b) {
		return nil, ErrBadLength
	}
	var msg Message
	switch b[18] {
	case TypeOpen:
		msg = &Open{}
	case TypeUpdate:
		msg = &Update{}
	case TypeNotification:
		msg = &Notification{}
	case TypeKeepalive:
		msg = &Keepalive{}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, b[18])
	}
	if err := msg.decodeBody(b[HeaderLen:]); err != nil {
		return nil, err
	}
	return msg, nil
}
