package wire

import "encoding/binary"

// EncodeAttributes serializes only the path-attribute section of u (no
// withdrawn routes, no NLRI). MRT TABLE_DUMP_V2 RIB entries embed BGP
// path attributes in exactly this form (RFC 6396 §4.3.4, with the AS
// paths in 4-octet encoding).
func EncodeAttributes(u *Update) ([]byte, error) {
	full, err := Encode(&Update{
		Origin:      u.Origin,
		ASPath:      u.ASPath,
		NextHop:     u.NextHop,
		MED:         u.MED,
		HasMED:      u.HasMED,
		LocalPref:   u.LocalPref,
		HasLocal:    u.HasLocal,
		Communities: u.Communities,
		// NLRI (or MPReach) forces ORIGIN/AS_PATH/NEXT_HOP to be emitted;
		// the classic NLRI bytes are sliced away below while MP prefixes
		// live inside the MP_REACH attribute itself.
		NLRI:      u.NLRI,
		MPNextHop: u.MPNextHop,
		MPReach:   u.MPReach,
		MPUnreach: u.MPUnreach,
	})
	if err != nil {
		return nil, err
	}
	body := full[HeaderLen:]
	wdLen := int(binary.BigEndian.Uint16(body))
	attrStart := 2 + wdLen
	attrLen := int(binary.BigEndian.Uint16(body[attrStart:]))
	out := make([]byte, attrLen)
	copy(out, body[attrStart+2:attrStart+2+attrLen])
	return out, nil
}

// DecodeAttributes parses a bare path-attribute section into an Update
// carrying only attribute-derived fields.
func DecodeAttributes(b []byte) (*Update, error) {
	// Reconstruct a minimal UPDATE body around the attributes and reuse
	// the strict message decoder.
	body := make([]byte, 0, len(b)+4)
	body = binary.BigEndian.AppendUint16(body, 0) // no withdrawn routes
	body = binary.BigEndian.AppendUint16(body, uint16(len(b)))
	body = append(body, b...)
	u := &Update{}
	if err := u.decodeBody(body); err != nil {
		return nil, err
	}
	return u, nil
}
