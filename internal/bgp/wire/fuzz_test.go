package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics feeds random byte soup — with a valid header
// stapled on so the body decoders are actually reached — and requires
// clean errors, never panics or corrupt successes.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200)
		body := make([]byte, n)
		r.Read(body)
		msg := make([]byte, 0, HeaderLen+n)
		for i := 0; i < 16; i++ {
			msg = append(msg, 0xFF)
		}
		total := HeaderLen + n
		msg = append(msg, byte(total>>8), byte(total))
		msg = append(msg, byte(1+r.Intn(4))) // a real type so the body parser runs
		msg = append(msg, body...)
		m, err := Decode(msg)
		if err != nil {
			return true
		}
		// A successful decode must re-encode without error.
		if _, err := Encode(m); err != nil {
			// Updates decoded from the wire can carry combinations our
			// encoder refuses (e.g. NLRI without next hop was caught at
			// decode; others may legitimately fail) — but OPEN/KEEPALIVE/
			// NOTIFICATION must always round-trip.
			switch m.(type) {
			case *Update:
				return true
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeAttributesNeverPanics drives the bare-attribute decoder (used
// by the MRT reader on archive bytes) with random input.
func TestDecodeAttributesNeverPanics(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = DecodeAttributes(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestAttributesRoundTrip: EncodeAttributes → DecodeAttributes preserves
// the attribute-carried fields.
func TestAttributesRoundTrip(t *testing.T) {
	u := fullUpdate()
	u.Withdrawn = nil // withdrawals are not attributes
	attrs, err := EncodeAttributes(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAttributes(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != u.Origin || len(got.ASPath) != len(u.ASPath) {
		t.Errorf("origin/path mismatch: %+v", got)
	}
	if got.NextHop != u.NextHop {
		t.Errorf("next hop = %v", got.NextHop)
	}
	if len(got.MPReach) != len(u.MPReach) || got.MPNextHop != u.MPNextHop {
		t.Errorf("MP fields mismatch: %+v", got)
	}
	if got.MED != u.MED || got.HasMED != u.HasMED || got.LocalPref != u.LocalPref {
		t.Errorf("MED/local-pref mismatch: %+v", got)
	}
	if len(got.Communities) != len(u.Communities) {
		t.Errorf("communities = %v", got.Communities)
	}
	// NLRI itself is not part of the attribute section.
	if len(got.NLRI) != 0 {
		t.Errorf("NLRI leaked into attributes: %v", got.NLRI)
	}
}
