package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// AttrAS4Path is the AS4_PATH attribute (RFC 6793 §3): the 4-octet path
// a NEW speaker supplies when talking to an OLD (2-octet) speaker.
const AttrAS4Path = 17

// EncodeLegacyASPath renders the update's AS path the way a 4-octet
// speaker addresses a 2-octet-only peer (RFC 6793 §4.2.2): the AS_PATH
// carries 2-octet ASNs with AS_TRANS substituted for the unmappable
// ones, and — when any substitution happened — the true path rides in an
// AS4_PATH attribute. The returned slices are the raw attribute values.
func EncodeLegacyASPath(segments []ASPathSegment) (asPath []byte, as4Path []byte, err error) {
	substituted := false
	for _, seg := range segments {
		if len(seg.ASNs) > 255 {
			return nil, nil, errors.New("bgp: AS path segment too long")
		}
		asPath = append(asPath, seg.Type, byte(len(seg.ASNs)))
		for _, asn := range seg.ASNs {
			if asn > 0xFFFF {
				substituted = true
				asPath = binary.BigEndian.AppendUint16(asPath, uint16(ASTrans))
			} else {
				asPath = binary.BigEndian.AppendUint16(asPath, uint16(asn))
			}
		}
	}
	if !substituted {
		return asPath, nil, nil
	}
	for _, seg := range segments {
		as4Path = append(as4Path, seg.Type, byte(len(seg.ASNs)))
		for _, asn := range seg.ASNs {
			as4Path = binary.BigEndian.AppendUint32(as4Path, asn)
		}
	}
	return asPath, as4Path, nil
}

// decodeSegments16 parses a 2-octet AS_PATH attribute value.
func decodeSegments16(val []byte) ([]ASPathSegment, error) {
	var segs []ASPathSegment
	for len(val) > 0 {
		if len(val) < 2 {
			return nil, ErrTruncated
		}
		segType, count := val[0], int(val[1])
		val = val[2:]
		if len(val) < count*2 {
			return nil, ErrTruncated
		}
		seg := ASPathSegment{Type: segType}
		for i := 0; i < count; i++ {
			seg.ASNs = append(seg.ASNs, uint32(binary.BigEndian.Uint16(val[i*2:])))
		}
		val = val[count*2:]
		segs = append(segs, seg)
	}
	return segs, nil
}

// decodeSegments32 parses a 4-octet AS_PATH/AS4_PATH attribute value.
func decodeSegments32(val []byte) ([]ASPathSegment, error) {
	var segs []ASPathSegment
	for len(val) > 0 {
		if len(val) < 2 {
			return nil, ErrTruncated
		}
		segType, count := val[0], int(val[1])
		val = val[2:]
		if len(val) < count*4 {
			return nil, ErrTruncated
		}
		seg := ASPathSegment{Type: segType}
		for i := 0; i < count; i++ {
			seg.ASNs = append(seg.ASNs, binary.BigEndian.Uint32(val[i*4:]))
		}
		val = val[count*4:]
		segs = append(segs, seg)
	}
	return segs, nil
}

func segmentsLen(segs []ASPathSegment) int {
	n := 0
	for _, s := range segs {
		n += len(s.ASNs)
	}
	return n
}

// MergeAS4Path reconstructs the true 4-octet path from a legacy AS_PATH
// (with AS_TRANS placeholders) and an AS4_PATH, per RFC 6793 §4.2.3:
// when the AS_PATH is at least as long as the AS4_PATH, the leading
// excess of the AS_PATH is prepended to the AS4_PATH; a shorter AS_PATH
// signals a broken speaker and the legacy path is used as-is.
func MergeAS4Path(asPath, as4Path []ASPathSegment) []ASPathSegment {
	if len(as4Path) == 0 {
		return asPath
	}
	n, n4 := segmentsLen(asPath), segmentsLen(as4Path)
	if n < n4 {
		return asPath // malformed per RFC 6793: ignore AS4_PATH
	}
	excess := n - n4
	var merged []ASPathSegment
	for _, seg := range asPath {
		if excess == 0 {
			break
		}
		if len(seg.ASNs) <= excess {
			merged = append(merged, seg)
			excess -= len(seg.ASNs)
			continue
		}
		merged = append(merged, ASPathSegment{Type: seg.Type, ASNs: seg.ASNs[:excess]})
		excess = 0
	}
	return append(merged, as4Path...)
}

// DecodeLegacyUpdate decodes an UPDATE received from a 2-octet session:
// the AS_PATH attribute carries 2-octet ASNs and an optional AS4_PATH
// restores the 4-octet reality. Everything else matches Decode.
func DecodeLegacyUpdate(b []byte) (*Update, error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	for i := 0; i < 16; i++ {
		if b[i] != markerByte {
			return nil, ErrBadMarker
		}
	}
	length := int(binary.BigEndian.Uint16(b[16:18]))
	if length != len(b) || length < HeaderLen || b[18] != TypeUpdate {
		return nil, fmt.Errorf("%w: not a well-framed UPDATE", ErrBadLength)
	}
	body := b[HeaderLen:]
	u := &Update{}
	if len(body) < 2 {
		return nil, ErrTruncated
	}
	wdLen := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if len(body) < wdLen {
		return nil, ErrTruncated
	}
	wd := body[:wdLen]
	body = body[wdLen:]
	for len(wd) > 0 {
		p, rest, err := decodePrefix(wd, false)
		if err != nil {
			return nil, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		wd = rest
	}
	if len(body) < 2 {
		return nil, ErrTruncated
	}
	attrLen := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if len(body) < attrLen {
		return nil, ErrTruncated
	}
	attrs := body[:attrLen]
	body = body[attrLen:]

	var legacyPath, truePath []ASPathSegment
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, ErrTruncated
		}
		flags, typ := attrs[0], attrs[1]
		var alen int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return nil, ErrTruncated
			}
			alen = int(binary.BigEndian.Uint16(attrs[2:4]))
			attrs = attrs[4:]
		} else {
			alen = int(attrs[2])
			attrs = attrs[3:]
		}
		if len(attrs) < alen {
			return nil, ErrTruncated
		}
		val := attrs[:alen]
		attrs = attrs[alen:]
		var err error
		switch typ {
		case AttrASPath:
			legacyPath, err = decodeSegments16(val)
		case AttrAS4Path:
			truePath, err = decodeSegments32(val)
		default:
			err = u.decodeAttr(typ, val)
		}
		if err != nil {
			return nil, err
		}
	}
	u.ASPath = MergeAS4Path(legacyPath, truePath)

	for len(body) > 0 {
		p, rest, err := decodePrefix(body, false)
		if err != nil {
			return nil, err
		}
		u.NLRI = append(u.NLRI, p)
		body = rest
	}
	return u, nil
}

// EncodeLegacyUpdate encodes u for a 2-octet session: AS_PATH in 2-octet
// form with AS_TRANS substitution plus AS4_PATH when needed. Only the
// attributes a legacy session can carry are emitted (no MP-BGP).
func EncodeLegacyUpdate(u *Update) ([]byte, error) {
	if len(u.MPReach) > 0 || len(u.MPUnreach) > 0 {
		return nil, errors.New("bgp: legacy sessions cannot carry MP-BGP attributes")
	}
	asPath, as4Path, err := EncodeLegacyASPath(u.ASPath)
	if err != nil {
		return nil, err
	}
	b := make([]byte, HeaderLen, 128)
	for i := 0; i < 16; i++ {
		b[i] = markerByte
	}
	b[18] = TypeUpdate

	var wd []byte
	for _, p := range u.Withdrawn {
		if p.Is6() {
			return nil, errors.New("bgp: IPv6 withdraw on a legacy session")
		}
		wd = encodePrefix(wd, p)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(wd)))
	b = append(b, wd...)

	var attrs []byte
	if len(u.NLRI) > 0 {
		attrs = appendAttr(attrs, flagTransitive, AttrOrigin, []byte{u.Origin})
		attrs = appendAttr(attrs, flagTransitive, AttrASPath, asPath)
		if len(as4Path) > 0 {
			attrs = appendAttr(attrs, flagOptional|flagTransitive, AttrAS4Path, as4Path)
		}
		if !u.NextHop.Is4() {
			return nil, errors.New("bgp: IPv4 NLRI requires an IPv4 next hop")
		}
		nh := u.NextHop.As4()
		attrs = appendAttr(attrs, flagTransitive, AttrNextHop, nh[:])
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(attrs)))
	b = append(b, attrs...)
	for _, p := range u.NLRI {
		if p.Is6() {
			return nil, errors.New("bgp: IPv6 NLRI on a legacy session")
		}
		b = encodePrefix(b, p)
	}
	if len(b) > MaxMsgLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadLength, len(b))
	}
	binary.BigEndian.PutUint16(b[16:18], uint16(len(b)))
	return b, nil
}
