package wire

import (
	"net/netip"
	"reflect"
	"testing"

	"manrsmeter/internal/netx"
)

func TestEncodeLegacyASPathNoSubstitution(t *testing.T) {
	segs := []ASPathSegment{{Type: ASSequence, ASNs: []uint32{64500, 64501}}}
	asPath, as4Path, err := EncodeLegacyASPath(segs)
	if err != nil {
		t.Fatal(err)
	}
	if as4Path != nil {
		t.Error("no substitution should emit no AS4_PATH")
	}
	got, err := decodeSegments16(asPath)
	if err != nil || !reflect.DeepEqual(got, segs) {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestEncodeLegacyASPathSubstitutesASTrans(t *testing.T) {
	segs := []ASPathSegment{{Type: ASSequence, ASNs: []uint32{64500, 4200000001, 64502}}}
	asPath, as4Path, err := EncodeLegacyASPath(segs)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := decodeSegments16(asPath)
	if err != nil {
		t.Fatal(err)
	}
	want := []ASPathSegment{{Type: ASSequence, ASNs: []uint32{64500, uint32(ASTrans), 64502}}}
	if !reflect.DeepEqual(legacy, want) {
		t.Errorf("legacy path = %+v", legacy)
	}
	truth, err := decodeSegments32(as4Path)
	if err != nil || !reflect.DeepEqual(truth, segs) {
		t.Errorf("AS4_PATH = %+v, %v", truth, err)
	}
}

func TestMergeAS4Path(t *testing.T) {
	legacy := []ASPathSegment{{Type: ASSequence, ASNs: []uint32{65100, uint32(ASTrans), 64502}}}
	truth := []ASPathSegment{{Type: ASSequence, ASNs: []uint32{4200000001, 64502}}}
	merged := MergeAS4Path(legacy, truth)
	// Legacy is one ASN longer: its first hop (prepended by an OLD
	// speaker after the NEW speaker built AS4_PATH) survives.
	want := []ASPathSegment{
		{Type: ASSequence, ASNs: []uint32{65100}},
		{Type: ASSequence, ASNs: []uint32{4200000001, 64502}},
	}
	if !reflect.DeepEqual(merged, want) {
		t.Errorf("merged = %+v", merged)
	}
	// Equal lengths: AS4_PATH wins outright.
	merged = MergeAS4Path(truth, truth)
	if !reflect.DeepEqual(merged, truth) {
		t.Errorf("equal-length merge = %+v", merged)
	}
	// AS4_PATH longer than AS_PATH: malformed; keep legacy.
	short := []ASPathSegment{{Type: ASSequence, ASNs: []uint32{1}}}
	if got := MergeAS4Path(short, truth); !reflect.DeepEqual(got, short) {
		t.Errorf("malformed merge = %+v", got)
	}
	// No AS4_PATH at all.
	if got := MergeAS4Path(legacy, nil); !reflect.DeepEqual(got, legacy) {
		t.Errorf("nil AS4_PATH merge = %+v", got)
	}
}

func TestLegacyUpdateRoundTrip(t *testing.T) {
	u := &Update{
		Origin:  OriginIGP,
		ASPath:  []ASPathSegment{{Type: ASSequence, ASNs: []uint32{64500, 4200000001, 64502}}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netx.Prefix{pfx("10.0.0.0/8"), pfx("198.51.100.0/24")},
	}
	b, err := EncodeLegacyUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLegacyUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	// The true 4-octet path is restored via AS4_PATH.
	if !reflect.DeepEqual(got.ASPath, u.ASPath) {
		t.Errorf("path = %+v, want %+v", got.ASPath, u.ASPath)
	}
	if !reflect.DeepEqual(got.NLRI, u.NLRI) || got.NextHop != u.NextHop || got.Origin != u.Origin {
		t.Errorf("fields = %+v", got)
	}
	origin, ok := got.OriginAS()
	if !ok || origin != 64502 {
		t.Errorf("origin = %d", origin)
	}
}

func TestLegacyUpdateSmallASNsOnly(t *testing.T) {
	u := &Update{
		Origin:  OriginIGP,
		ASPath:  []ASPathSegment{{Type: ASSequence, ASNs: []uint32{64500, 64501}}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netx.Prefix{pfx("10.0.0.0/8")},
	}
	b, err := EncodeLegacyUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLegacyUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.ASPath, u.ASPath) {
		t.Errorf("path = %+v", got.ASPath)
	}
}

func TestLegacyUpdateErrors(t *testing.T) {
	cases := []*Update{
		{MPReach: []netx.Prefix{pfx("2001:db8::/32")}, MPNextHop: netip.MustParseAddr("2001:db8::1")},
		{Withdrawn: []netx.Prefix{pfx("2001:db8::/32")}},
		{NLRI: []netx.Prefix{pfx("10.0.0.0/8")}}, // no next hop
	}
	for i, u := range cases {
		if _, err := EncodeLegacyUpdate(u); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// DecodeLegacyUpdate rejects non-UPDATE frames and bad markers.
	ka, _ := Encode(&Keepalive{})
	if _, err := DecodeLegacyUpdate(ka); err == nil {
		t.Error("keepalive frame should fail")
	}
	if _, err := DecodeLegacyUpdate([]byte{1, 2, 3}); err == nil {
		t.Error("garbage should fail")
	}
}
