package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the full message decoder with arbitrary bytes. The
// seed corpus covers every message type; `go test` exercises the seeds,
// `go test -fuzz=FuzzDecode` explores further.
func FuzzDecode(f *testing.F) {
	seed := func(m Message) {
		b, err := Encode(m)
		if err == nil {
			f.Add(b)
		}
	}
	seed(NewOpen(4200000001, 90, [4]byte{1, 2, 3, 4}))
	seed(&Keepalive{})
	seed(&Notification{Code: 6, Subcode: 1, Data: []byte{1}})
	seed(fullUpdate())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode (updates may carry field
		// combinations our encoder refuses; that is acceptable).
		if _, ok := m.(*Update); ok {
			return
		}
		if _, err := Encode(m); err != nil {
			t.Fatalf("decoded %T fails to re-encode: %v", m, err)
		}
	})
}

// FuzzDecodeAttributes drives the bare-attribute decoder used by the MRT
// reader.
func FuzzDecodeAttributes(f *testing.F) {
	attrs, err := EncodeAttributes(fullUpdate())
	if err == nil {
		f.Add(attrs)
	}
	f.Add([]byte{})
	f.Add([]byte{0x40, 0x01, 0x01, 0x00}) // ORIGIN IGP

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeAttributes(data)
	})
}
