// Package collector implements a RouteViews-style BGP route collector: it
// accepts BGP-4 peerings, absorbs UPDATE streams into a multi-peer RIB,
// and exports MRT TABLE_DUMP_V2 snapshots — the artifact the measurement
// pipeline (and the real study) consumes.
//
// Connections are served through the netx.Server harness (panic
// isolation, connection caps, forced close on shutdown), and sessions
// run the RFC 4271 hold timer: a peer silent past the negotiated hold
// time is torn down with a NOTIFICATION and its routes are withdrawn
// from the RIB, so a dead feed cannot freeze stale routes into future
// snapshots. Routes from peers that disconnect cleanly are retained —
// the last-known-RIB behavior of an archival collector.
package collector

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"manrsmeter/internal/bgp"
	"manrsmeter/internal/bgp/mrt"
	"manrsmeter/internal/netx"
	"manrsmeter/internal/obsv"
)

// Collector metrics: peer session lifecycle, route churn absorbed into
// the RIB, and MRT snapshot output. Dead feeds (hold-timer expiries
// followed by withdrawals) and dump anomalies (skipped routes) are the
// failure modes the paper's longitudinal collection cares about.
var (
	mPeerSessions = obsv.NewCounter("collector_peer_sessions_total",
		"BGP peer sessions that completed the handshake")
	mPeersActive = obsv.NewGauge("collector_peers_active",
		"peer sessions currently established")
	mRoutesReceived = obsv.NewCounter("collector_routes_received_total",
		"prefixes announced across all UPDATE messages")
	mRoutesWithdrawn = obsv.NewCounter("collector_routes_withdrawn_total",
		"prefixes withdrawn across all UPDATE messages")
	mHoldExpired = obsv.NewCounter("collector_hold_expired_total",
		"peer sessions torn down by the hold timer (routes withdrawn)")
	mMRTDumps = obsv.NewCounter("collector_mrt_dumps_total",
		"MRT snapshots written")
	mMRTBytes = obsv.NewCounter("collector_mrt_bytes_written_total",
		"bytes of MRT snapshot output written")
	mMRTSkipped = obsv.NewCounter("collector_mrt_routes_skipped_total",
		"routes skipped by DumpMRT because their peer registered mid-dump")
)

// Collector accepts peerings and accumulates routes. Create with New.
type Collector struct {
	cfg       bgp.Config
	handshake time.Duration

	mu    sync.Mutex
	peers map[uint32]netip.Addr // peer ASN → peer address
	rib   *bgp.RIB

	srv *netx.Server

	// dumpSkipped counts routes skipped by DumpMRT because their peer
	// registered after the dump's peer-table snapshot.
	dumpSkipped atomic.Int64
}

// Option customizes a Collector.
type Option func(*Collector)

// WithHoldTime sets the hold time advertised to peers (and therefore an
// upper bound on the negotiated value). Zero keeps the 90s default.
func WithHoldTime(d time.Duration) Option {
	return func(c *Collector) { c.cfg.HoldTime = d }
}

// WithHandshakeTimeout bounds the OPEN/KEEPALIVE exchange (default 10s).
func WithHandshakeTimeout(d time.Duration) Option {
	return func(c *Collector) { c.handshake = d }
}

// WithMaxPeers caps concurrent peer connections; excess connections are
// refused at accept time. Zero means unlimited.
func WithMaxPeers(n int) Option {
	return func(c *Collector) { c.srv.MaxConns = n }
}

// New returns a collector identifying as asn.
func New(asn uint32, bgpID [4]byte, opts ...Option) *Collector {
	c := &Collector{
		cfg:       bgp.Config{ASN: asn, BGPID: bgpID},
		handshake: 10 * time.Second,
		peers:     make(map[uint32]netip.Addr),
		rib:       bgp.NewRIB(),
	}
	c.srv = &netx.Server{Handler: c.servePeer}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// RIB exposes the live RIB (safe for concurrent reads).
func (c *Collector) RIB() *bgp.RIB { return c.rib }

// NumPeers returns the number of peers that completed the handshake.
func (c *Collector) NumPeers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers)
}

// Listen starts accepting peers on addr and returns the bound address.
func (c *Collector) Listen(addr string) (net.Addr, error) {
	return c.srv.Listen(addr)
}

// Serve accepts peers from an existing listener (chaos tests inject
// fault-wrapped listeners here). It returns once accepting has started.
func (c *Collector) Serve(ln net.Listener) error {
	return c.srv.Serve(ln)
}

// peerAddr extracts the remote address of a peer connection, IPv4 or
// IPv6. Transports without an IP remote (in-memory pipes) yield the
// unspecified IPv4 address.
func peerAddr(conn net.Conn) netip.Addr {
	ra := conn.RemoteAddr()
	if ra == nil {
		return netip.IPv4Unspecified()
	}
	if tcp, ok := ra.(*net.TCPAddr); ok {
		if a, ok := netip.AddrFromSlice(tcp.IP); ok {
			return a.Unmap()
		}
	}
	if ap, err := netip.ParseAddrPort(ra.String()); err == nil {
		return ap.Addr().Unmap()
	}
	return netip.IPv4Unspecified()
}

func (c *Collector) servePeer(ctx context.Context, conn net.Conn) {
	sess, err := bgp.Establish(conn, c.cfg, c.handshake)
	if err != nil {
		return // harness closes the conn
	}
	defer sess.Close()

	// Keep our side of the hold timer fed.
	stopKeepalives := sess.StartKeepalives(0)
	defer stopKeepalives()

	c.mu.Lock()
	c.peers[sess.PeerASN()] = peerAddr(conn)
	c.mu.Unlock()
	mPeerSessions.Inc()
	mPeersActive.Inc()
	defer mPeersActive.Dec()

	for {
		update, err := sess.Recv()
		if err != nil {
			if errors.Is(err, bgp.ErrHoldTimerExpired) {
				// Dead feed: its routes are stale, withdraw them. The
				// peer stays in the peer table so earlier dumps remain
				// attributable.
				mHoldExpired.Inc()
				mRoutesWithdrawn.Add(int64(c.rib.RemovePeer(sess.PeerASN())))
			}
			return // otherwise routes learned so far stay (archival RIB)
		}
		mRoutesReceived.Add(int64(len(update.NLRI) + len(update.MPReach)))
		mRoutesWithdrawn.Add(int64(len(update.Withdrawn) + len(update.MPUnreach)))
		c.rib.Apply(sess.PeerASN(), update)
	}
}

// Close stops accepting, terminates peer sessions (including any still
// in the handshake), and waits for their goroutines to finish.
func (c *Collector) Close() error {
	return c.srv.Close()
}

// Shutdown stops accepting and waits for peer sessions to wind down on
// their own, force-closing whatever remains when ctx expires. Routes
// from cleanly departed peers stay in the RIB, as with Close.
func (c *Collector) Shutdown(ctx context.Context) error {
	return c.srv.Shutdown(ctx)
}

// DumpSkipped reports how many routes DumpMRT has skipped because their
// peer registered concurrently with a dump.
func (c *Collector) DumpSkipped() int64 { return c.dumpSkipped.Load() }

// DumpMRT writes the current RIB as a TABLE_DUMP_V2 snapshot stamped ts.
// Peers may register and announce concurrently with a dump; routes whose
// peer is not in this dump's peer table are skipped and counted (see
// DumpSkipped) rather than aborting the snapshot — they appear in the
// next dump.
func (c *Collector) DumpMRT(w interface{ Write([]byte) (int, error) }, ts time.Time) error {
	c.mu.Lock()
	peerASNs := make([]uint32, 0, len(c.peers))
	for asn := range c.peers {
		peerASNs = append(peerASNs, asn)
	}
	sort.Slice(peerASNs, func(i, j int) bool { return peerASNs[i] < peerASNs[j] })
	peers := make([]mrt.Peer, len(peerASNs))
	peerIdx := make(map[uint32]uint16, len(peerASNs))
	for i, asn := range peerASNs {
		peers[i] = mrt.Peer{
			BGPID: [4]byte{byte(asn >> 24), byte(asn >> 16), byte(asn >> 8), byte(asn)},
			Addr:  c.peers[asn],
			ASN:   asn,
		}
		peerIdx[asn] = uint16(i)
	}
	c.mu.Unlock()

	// Group RIB routes by prefix.
	byPrefix := make(map[netx.Prefix][]bgp.Route)
	var order []netx.Prefix
	c.rib.Walk(func(r bgp.Route) bool {
		if _, ok := byPrefix[r.Prefix]; !ok {
			order = append(order, r.Prefix)
		}
		byPrefix[r.Prefix] = append(byPrefix[r.Prefix], r)
		return true
	})
	sort.Slice(order, func(i, j int) bool { return order[i].Compare(order[j]) < 0 })

	cw := &countingWriter{w: w}
	defer func() {
		mMRTBytes.Add(cw.n)
		mMRTDumps.Inc()
	}()
	mw := mrt.NewWriter(cw, ts)
	if err := mw.WritePeerIndexTable(c.cfg.BGPID, "collector-rib", peers); err != nil {
		return err
	}
	for _, prefix := range order {
		routes := byPrefix[prefix]
		sort.Slice(routes, func(i, j int) bool { return routes[i].PeerASN < routes[j].PeerASN })
		entries := make([]mrt.RIBEntry, 0, len(routes))
		for _, r := range routes {
			idx, ok := peerIdx[r.PeerASN]
			if !ok {
				c.dumpSkipped.Add(1)
				mMRTSkipped.Inc()
				continue
			}
			entries = append(entries, mrt.RIBEntry{
				PeerIndex:      idx,
				OriginatedTime: ts,
				Path:           r.Path,
			})
		}
		if len(entries) == 0 {
			continue
		}
		if err := mw.WriteRIB(prefix, entries); err != nil {
			return err
		}
	}
	return nil
}

// countingWriter tallies bytes written through it for the MRT output
// counter.
type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
