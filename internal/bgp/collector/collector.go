// Package collector implements a RouteViews-style BGP route collector: it
// accepts BGP-4 peerings, absorbs UPDATE streams into a multi-peer RIB,
// and exports MRT TABLE_DUMP_V2 snapshots — the artifact the measurement
// pipeline (and the real study) consumes.
package collector

import (
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"
	"time"

	"manrsmeter/internal/bgp"
	"manrsmeter/internal/bgp/mrt"
	"manrsmeter/internal/netx"
)

// Collector accepts peerings and accumulates routes. Create with New.
type Collector struct {
	cfg bgp.Config

	mu    sync.Mutex
	peers map[uint32]netip.Addr // peer ASN → peer address
	rib   *bgp.RIB

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// New returns a collector identifying as asn.
func New(asn uint32, bgpID [4]byte) *Collector {
	return &Collector{
		cfg:    bgp.Config{ASN: asn, BGPID: bgpID},
		peers:  make(map[uint32]netip.Addr),
		rib:    bgp.NewRIB(),
		closed: make(chan struct{}),
	}
}

// RIB exposes the live RIB (safe for concurrent reads).
func (c *Collector) RIB() *bgp.RIB { return c.rib }

// NumPeers returns the number of peers that completed the handshake.
func (c *Collector) NumPeers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers)
}

// Listen starts accepting peers on addr and returns the bound address.
func (c *Collector) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.servePeer(conn)
			}()
		}
	}()
	return ln.Addr(), nil
}

func (c *Collector) servePeer(conn net.Conn) {
	sess, err := bgp.Establish(conn, c.cfg, 10*time.Second)
	if err != nil {
		conn.Close()
		return
	}
	defer sess.Close()

	peerAddr := netip.AddrFrom4([4]byte{127, 0, 0, 1})
	if tcp, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		if a, ok := netip.AddrFromSlice(tcp.IP); ok {
			peerAddr = a.Unmap()
		}
	}
	c.mu.Lock()
	c.peers[sess.PeerASN()] = peerAddr
	c.mu.Unlock()

	for {
		update, err := sess.Recv()
		if err != nil {
			return // peer closed or errored; routes learned so far stay
		}
		c.rib.Apply(sess.PeerASN(), update)
	}
}

// Close stops accepting and terminates peer sessions.
func (c *Collector) Close() error {
	close(c.closed)
	var err error
	if c.ln != nil {
		err = c.ln.Close()
	}
	c.wg.Wait()
	return err
}

// DumpMRT writes the current RIB as a TABLE_DUMP_V2 snapshot stamped ts.
func (c *Collector) DumpMRT(w interface{ Write([]byte) (int, error) }, ts time.Time) error {
	c.mu.Lock()
	peerASNs := make([]uint32, 0, len(c.peers))
	for asn := range c.peers {
		peerASNs = append(peerASNs, asn)
	}
	sort.Slice(peerASNs, func(i, j int) bool { return peerASNs[i] < peerASNs[j] })
	peers := make([]mrt.Peer, len(peerASNs))
	peerIdx := make(map[uint32]uint16, len(peerASNs))
	for i, asn := range peerASNs {
		peers[i] = mrt.Peer{
			BGPID: [4]byte{byte(asn >> 24), byte(asn >> 16), byte(asn >> 8), byte(asn)},
			Addr:  c.peers[asn],
			ASN:   asn,
		}
		peerIdx[asn] = uint16(i)
	}
	c.mu.Unlock()

	// Group RIB routes by prefix.
	byPrefix := make(map[netx.Prefix][]bgp.Route)
	var order []netx.Prefix
	c.rib.Walk(func(r bgp.Route) bool {
		if _, ok := byPrefix[r.Prefix]; !ok {
			order = append(order, r.Prefix)
		}
		byPrefix[r.Prefix] = append(byPrefix[r.Prefix], r)
		return true
	})
	sort.Slice(order, func(i, j int) bool { return order[i].Compare(order[j]) < 0 })

	mw := mrt.NewWriter(w, ts)
	if err := mw.WritePeerIndexTable(c.cfg.BGPID, "collector-rib", peers); err != nil {
		return err
	}
	for _, prefix := range order {
		routes := byPrefix[prefix]
		sort.Slice(routes, func(i, j int) bool { return routes[i].PeerASN < routes[j].PeerASN })
		entries := make([]mrt.RIBEntry, 0, len(routes))
		for _, r := range routes {
			idx, ok := peerIdx[r.PeerASN]
			if !ok {
				return fmt.Errorf("collector: route from unknown peer AS%d", r.PeerASN)
			}
			entries = append(entries, mrt.RIBEntry{
				PeerIndex:      idx,
				OriginatedTime: ts,
				Path:           r.Path,
			})
		}
		if err := mw.WriteRIB(prefix, entries); err != nil {
			return err
		}
	}
	return nil
}
