package collector

import (
	"bytes"
	"net"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"manrsmeter/internal/bgp"
	"manrsmeter/internal/bgp/mrt"
	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
)

func pfx(s string) netx.Prefix { return netx.MustParsePrefix(s) }

// announceAll dials the collector as asn and announces the given routes.
func announceAll(t *testing.T, addr string, asn uint32, routes map[string][]uint32) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bgp.Establish(conn, bgp.Config{ASN: asn, BGPID: [4]byte{byte(asn), 0, 0, 1}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for p, path := range routes {
		err := sess.SendUpdate(&wire.Update{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: path}},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			NLRI:    []netx.Prefix{pfx(p)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Leave the session up long enough for the collector to drain.
	time.Sleep(100 * time.Millisecond)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestCollectorEndToEnd(t *testing.T) {
	c := New(65000, [4]byte{10, 0, 0, 1})
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	announceAll(t, addr.String(), 64500, map[string][]uint32{
		"10.0.0.0/8":      {64500},
		"198.51.100.0/24": {64500, 64999},
	})
	announceAll(t, addr.String(), 64501, map[string][]uint32{
		"10.0.0.0/8": {64501, 64500},
	})
	waitFor(t, func() bool { return c.RIB().Len() == 3 && c.NumPeers() == 2 })

	// Dump and reparse the MRT snapshot.
	var buf bytes.Buffer
	ts := time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)
	if err := c.DumpMRT(&buf, ts); err != nil {
		t.Fatal(err)
	}
	dump, err := mrt.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Peers) != 2 || dump.Peers[0].ASN != 64500 || dump.Peers[1].ASN != 64501 {
		t.Fatalf("peers = %+v", dump.Peers)
	}
	if len(dump.Records) != 2 {
		t.Fatalf("records = %d", len(dump.Records))
	}
	// 10.0.0.0/8 carries two entries (one per peer), sorted by peer.
	var tenSlash8 *mrt.RIBRecord
	for i := range dump.Records {
		if dump.Records[i].Prefix == pfx("10.0.0.0/8") {
			tenSlash8 = &dump.Records[i]
		}
	}
	if tenSlash8 == nil || len(tenSlash8.Entries) != 2 {
		t.Fatalf("10/8 record = %+v", tenSlash8)
	}
	if !reflect.DeepEqual(tenSlash8.Entries[0].Path, []uint32{64500}) ||
		!reflect.DeepEqual(tenSlash8.Entries[1].Path, []uint32{64501, 64500}) {
		t.Errorf("paths = %+v", tenSlash8.Entries)
	}
}

func TestCollectorWithdraw(t *testing.T) {
	c := New(65000, [4]byte{10, 0, 0, 2})
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bgp.Establish(conn, bgp.Config{ASN: 64502, BGPID: [4]byte{9, 9, 9, 9}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	err = sess.SendUpdate(&wire.Update{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{64502}}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netx.Prefix{pfx("203.0.113.0/24")},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.RIB().Len() == 1 })
	if err := sess.SendUpdate(&wire.Update{Withdrawn: []netx.Prefix{pfx("203.0.113.0/24")}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.RIB().Len() == 0 })
}

func TestCollectorEmptyDump(t *testing.T) {
	c := New(65000, [4]byte{1, 1, 1, 1})
	var buf bytes.Buffer
	if err := c.DumpMRT(&buf, time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	dump, err := mrt.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Peers) != 0 || len(dump.Records) != 0 {
		t.Errorf("empty dump = %+v", dump)
	}
}
