package collector

import (
	"bytes"
	"net"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"manrsmeter/internal/bgp"
	"manrsmeter/internal/bgp/mrt"
	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
)

// A peer that completes the handshake and then falls silent must be torn
// down by the hold timer and its routes withdrawn — a dead feed may not
// freeze stale routes into future snapshots.
func TestCollectorWithdrawsSilentPeer(t *testing.T) {
	c := New(65000, [4]byte{10, 0, 0, 3}, WithHoldTime(time.Second))
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sess, err := bgp.Establish(conn, bgp.Config{ASN: 64510, BGPID: [4]byte{8, 8, 8, 8}, HoldTime: time.Second}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	err = sess.SendUpdate(&wire.Update{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{64510}}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netx.Prefix{pfx("203.0.113.0/24")},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.RIB().Len() == 1 })

	// No keepalives from here on: the collector's hold timer (≈1s) fires
	// and withdraws the peer's routes.
	waitFor(t, func() bool { return c.RIB().Len() == 0 })

	// The peer stays in the peer table so earlier dumps remain
	// attributable, but contributes no records.
	if c.NumPeers() != 1 {
		t.Errorf("NumPeers = %d, want 1 (peer table is archival)", c.NumPeers())
	}
	var buf bytes.Buffer
	if err := c.DumpMRT(&buf, time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	dump, err := mrt.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Records) != 0 {
		t.Errorf("dump still carries %d records from the dead peer", len(dump.Records))
	}
}

// A peer that disconnects cleanly keeps its routes in the RIB (archival
// last-known-RIB), in contrast to hold-timer expiry above.
func TestCollectorKeepsRoutesOnCleanDisconnect(t *testing.T) {
	c := New(65000, [4]byte{10, 0, 0, 4})
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	announceAll(t, addr.String(), 64511, map[string][]uint32{
		"198.51.100.0/24": {64511},
	}) // announceAll closes the session cleanly on return
	waitFor(t, func() bool { return c.RIB().Len() == 1 })

	// Give the collector time to notice the disconnect; the route must stay.
	time.Sleep(200 * time.Millisecond)
	if c.RIB().Len() != 1 {
		t.Errorf("RIB len = %d after clean disconnect, want 1", c.RIB().Len())
	}
}

// Close during an in-flight handshake must force the connection shut and
// reap the peer goroutine instead of waiting out the handshake timeout.
func TestCollectorCloseDuringHandshake(t *testing.T) {
	before := runtime.NumGoroutine()

	c := New(65000, [4]byte{10, 0, 0, 5})
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing: the collector's handler is blocked reading our OPEN.
	deadline := time.Now().Add(5 * time.Second)
	for c.srv.ActiveConns() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on the in-flight handshake")
	}

	// All collector goroutines must be reaped.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
}

// The peer table records the real remote address of each peering, not a
// hardcoded loopback placeholder.
func TestCollectorRecordsPeerAddress(t *testing.T) {
	c := New(65000, [4]byte{10, 0, 0, 6})
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sess, err := bgp.Establish(conn, bgp.Config{ASN: 64512, BGPID: [4]byte{7, 7, 7, 7}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	waitFor(t, func() bool { return c.NumPeers() == 1 })

	var buf bytes.Buffer
	if err := c.DumpMRT(&buf, time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	dump, err := mrt.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Peers) != 1 {
		t.Fatalf("peers = %+v", dump.Peers)
	}
	want := conn.LocalAddr().(*net.TCPAddr).IP.String()
	if got := dump.Peers[0].Addr.String(); got != want {
		t.Errorf("recorded peer addr = %s, want %s", got, want)
	}
}
