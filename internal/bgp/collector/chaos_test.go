package collector

import (
	"net"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"manrsmeter/internal/bgp"
	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
)

// chaosFaults is the full fault mix used against the collector: every
// class the injector implements, at rates high enough that dozens of
// handshakes hit each one.
func chaosFaults(seed int64) netx.FaultConfig {
	return netx.FaultConfig{
		Seed:            seed,
		Latency:         time.Millisecond,
		PartialWrites:   0.5,
		Corrupt:         0.2,
		Reset:           0.15,
		Stall:           0.1,
		StallFor:        30 * time.Millisecond,
		AcceptFailEvery: 4,
	}
}

// chaosDial runs one best-effort peering attempt against addr: dial,
// handshake, announce one prefix, close. Every step is allowed to fail —
// that's the point.
func chaosDial(addr string, asn uint32) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	sess, err := bgp.Establish(conn, bgp.Config{ASN: asn, BGPID: [4]byte{byte(asn >> 8), byte(asn), 0, 1}}, time.Second)
	if err != nil {
		return
	}
	defer sess.Close()
	_ = sess.SendUpdate(&wire.Update{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{asn}}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netx.Prefix{pfx("10.0.0.0/8")},
	})
}

// The collector must survive every fault class the injector can throw at
// it and still serve a clean peer correctly once the faults stop.
func TestCollectorChaosConvergence(t *testing.T) {
	c := New(65000, [4]byte{10, 0, 0, 7}, WithHandshakeTimeout(time.Second))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := netx.NewFaultInjector(chaosFaults(1))
	if err := c.Serve(inj.Listener(ln)); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chaosDial(ln.Addr().String(), uint32(64600+i))
		}(i)
	}
	wg.Wait()

	counts := inj.Counts()
	for _, class := range []string{netx.FaultLatency, netx.FaultPartial, netx.FaultCorrupt, netx.FaultReset, netx.FaultAcceptFail} {
		if counts[class] == 0 {
			t.Errorf("fault class %q never fired (%v)", class, counts)
		}
	}

	// Faults end; a clean peer must be served correctly: the harness
	// never abandoned the listener and no poisoned state survives.
	inj.Disable()
	announceAll(t, ln.Addr().String(), 64999, map[string][]uint32{
		"192.0.2.0/24": {64999},
	})
	waitFor(t, func() bool { return len(c.RIB().Lookup(pfx("192.0.2.0/24"))) == 1 })
}

// 100 chaotic connect/disconnect cycles must not leak a single daemon
// goroutine (the PR's acceptance criterion, run under -race).
func TestCollectorChaosNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	c := New(65000, [4]byte{10, 0, 0, 8}, WithHandshakeTimeout(time.Second))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := netx.NewFaultInjector(chaosFaults(2))
	if err := c.Serve(inj.Listener(ln)); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 10, 10 // 100 cycles total
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				chaosDial(ln.Addr().String(), uint32(64600+w*perWorker+i))
			}
		}(w)
	}
	wg.Wait()

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked after 100 chaotic cycles: %d before, %d after", before, runtime.NumGoroutine())
}
