package bmp

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
)

// A Sender streaming through a faulty transport must reconnect, replay
// the Peer Up state, and converge: every route sent after the faults
// stop reaches the station's RIB. Corruption is deliberately absent from
// the mix — BMP is a raw length-prefixed stream, so a flipped length
// byte desyncs the connection until it dies, which is a transport the
// reset fault already models; the chaos here is loss, fragmentation,
// delay, and disconnection.
func TestBMPChaosSenderConverges(t *testing.T) {
	st := NewStation()
	st.SetIdleTimeout(time.Second)
	addr, err := st.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	inj := netx.NewFaultInjector(netx.FaultConfig{
		Seed:          6,
		Latency:       time.Millisecond,
		PartialWrites: 0.5,
		Reset:         0.1,
		Stall:         0.05,
		StallFor:      20 * time.Millisecond,
	})
	rd := &netx.Redialer{
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Dial: func(ctx context.Context) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				return nil, err
			}
			return inj.Conn(conn), nil
		},
	}
	s := NewSenderDialer(rd, "edge-router", "chaos test feed")
	s.WriteTimeout = time.Second

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()

	peer := peerHdr("192.0.2.7", 64500)
	s.PeerUp(peer, netip.MustParseAddr("192.0.2.1"))

	// Chaos phase: stream routes while the transport flakes. Messages
	// already on a wire that then resets are legitimately lost, so
	// nothing is asserted about these prefixes.
	for i := 0; i < 50; i++ {
		s.Route(peer, &wire.Update{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{64500}}},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			NLRI:    []netx.Prefix{pfx(fmt.Sprintf("10.%d.0.0/16", i))},
		})
		time.Sleep(2 * time.Millisecond)
	}
	counts := inj.Counts()
	for _, class := range []string{netx.FaultLatency, netx.FaultPartial} {
		if counts[class] == 0 {
			t.Errorf("fault class %q never fired (%v)", class, counts)
		}
	}

	// Faults stop; everything sent from here must arrive.
	inj.Disable()
	after := []string{"198.51.100.0/24", "203.0.113.0/24"}
	for _, p := range after {
		s.Route(peer, &wire.Update{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{64500}}},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			NLRI:    []netx.Prefix{pfx(p)},
		})
	}
	waitFor(t, func() bool {
		for _, p := range after {
			if len(st.RIB().Lookup(pfx(p))) != 1 {
				return false
			}
		}
		return true
	})

	// The replayed session state also converged.
	waitFor(t, func() bool { return st.PeersUp() == 1 })
	if rs := st.Routers(); len(rs) != 1 || rs[0] != "edge-router" {
		t.Errorf("routers = %v", rs)
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Errorf("Run = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sender did not stop on cancel")
	}
}
