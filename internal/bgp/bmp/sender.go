package bmp

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
	"manrsmeter/internal/obsv"
)

// Sender metrics: (re)connections to the station, the Peer Up replays
// each reconnection performs, messages streamed, and queue overflow
// drops — the station-side view of an outage is reconstructed from
// exactly these.
var (
	mSenderConnects = obsv.NewCounter("bmp_sender_connects_total",
		"station connections established (first connect included)")
	mSenderReconnects = obsv.NewCounter("bmp_sender_reconnects_total",
		"station connections beyond each Run's first — outage recoveries")
	mSenderReplays = obsv.NewCounter("bmp_sender_peerups_replayed_total",
		"Peer Up messages replayed after reconnecting")
	mSenderMessages = obsv.NewCounter("bmp_sender_messages_total",
		"messages written to the station")
	mSenderDropped = obsv.NewCounter("bmp_sender_dropped_total",
		"messages discarded because the queue was full while disconnected")
)

// Sender is the router side of BMP: it streams Initiation, Peer Up/Down
// and Route Monitoring messages to a station, surviving station restarts
// and flaky transport via a netx.Redialer. On every (re)connection it
// replays Initiation and the Peer Up state for all currently-up peers,
// so the station's view converges after an outage; route messages
// produced while disconnected wait in a bounded queue (oldest dropped
// beyond the cap — the same back-pressure choice real routers make).
type Sender struct {
	// SysName/SysDesc identify the monitored router in Initiation.
	SysName, SysDesc string
	// WriteTimeout bounds each message write (default 10s).
	WriteTimeout time.Duration

	rd *netx.Redialer

	mu      sync.Mutex
	peersUp map[netip.Addr]PeerUp

	queue   chan Message
	dropped atomic.Int64
}

// DefaultSenderQueue is the queued-message cap while disconnected.
const DefaultSenderQueue = 4096

// NewSender returns a sender that will stream to the station at addr.
// Call Run to start the feed.
func NewSender(addr, sysName, sysDesc string) *Sender {
	return NewSenderDialer(&netx.Redialer{Addr: addr}, sysName, sysDesc)
}

// NewSenderDialer builds a sender around an explicit redialer, letting
// callers tune backoff or inject a custom Dial (tests use fault-wrapped
// pipes).
func NewSenderDialer(rd *netx.Redialer, sysName, sysDesc string) *Sender {
	return &Sender{
		SysName: sysName,
		SysDesc: sysDesc,
		rd:      rd,
		peersUp: make(map[netip.Addr]PeerUp),
		queue:   make(chan Message, DefaultSenderQueue),
	}
}

// Dropped reports how many messages were discarded because the queue
// was full while disconnected.
func (s *Sender) Dropped() int64 { return s.dropped.Load() }

// PeerUp records a monitored session coming up and streams it.
func (s *Sender) PeerUp(peer PeerHeader, local netip.Addr) {
	m := PeerUp{Peer: peer, LocalAddr: local}
	s.mu.Lock()
	s.peersUp[peer.Addr] = m
	s.mu.Unlock()
	s.enqueue(&m)
}

// PeerDown records a monitored session ending and streams it.
func (s *Sender) PeerDown(peer PeerHeader, reason byte) {
	s.mu.Lock()
	delete(s.peersUp, peer.Addr)
	s.mu.Unlock()
	s.enqueue(&PeerDown{Peer: peer, Reason: reason})
}

// Route streams one UPDATE observed from the monitored peer.
func (s *Sender) Route(peer PeerHeader, u *wire.Update) {
	s.enqueue(&RouteMonitoring{Peer: peer, Update: u})
}

// enqueue adds msg, evicting the oldest queued message when full.
func (s *Sender) enqueue(msg Message) {
	for {
		select {
		case s.queue <- msg:
			return
		default:
		}
		select {
		case <-s.queue:
			s.dropped.Add(1)
			mSenderDropped.Inc()
		default:
		}
	}
}

// requeue puts an unsent message back without evicting (best effort).
func (s *Sender) requeue(msg Message) {
	select {
	case s.queue <- msg:
	default:
		s.dropped.Add(1)
		mSenderDropped.Inc()
	}
}

// Run connects to the station and streams messages until ctx is done,
// reconnecting with exponential backoff whenever the transport fails.
// It returns nil after a clean shutdown (Termination sent on ctx
// cancellation) or the redialer's terminal error.
func (s *Sender) Run(ctx context.Context) error {
	wt := s.WriteTimeout
	if wt <= 0 {
		wt = 10 * time.Second
	}
	var connects atomic.Int64
	return s.rd.Run(ctx, func(ctx context.Context, conn net.Conn) error {
		if connects.Add(1) > 1 {
			mSenderReconnects.Inc()
		}
		mSenderConnects.Inc()
		write := func(m Message) error {
			_ = conn.SetWriteDeadline(time.Now().Add(wt))
			if err := Write(conn, m); err != nil {
				return err
			}
			mSenderMessages.Inc()
			return nil
		}
		if err := write(&Initiation{SysName: s.SysName, SysDesc: s.SysDesc}); err != nil {
			return err
		}
		// Replay session state lost to the disconnection.
		s.mu.Lock()
		replay := make([]PeerUp, 0, len(s.peersUp))
		for _, pu := range s.peersUp {
			replay = append(replay, pu)
		}
		s.mu.Unlock()
		for i := range replay {
			if err := write(&replay[i]); err != nil {
				return err
			}
			mSenderReplays.Inc()
		}
		for {
			select {
			case <-ctx.Done():
				_ = write(&Termination{Reason: "shutdown"})
				return nil
			case msg := <-s.queue:
				if err := write(msg); err != nil {
					s.requeue(msg)
					return err
				}
			}
		}
	})
}
