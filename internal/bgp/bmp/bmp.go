// Package bmp implements the BGP Monitoring Protocol (RFC 7854), the
// channel through which production routers stream their per-peer BGP
// state to monitoring stations — the successor to screen-scraping RIBs
// that collectors like RouteViews increasingly consume.
//
// The subset implemented is the monitoring happy path: Initiation with
// information TLVs, Peer Up / Peer Down with the per-peer header, Route
// Monitoring wrapping verbatim BGP UPDATE PDUs, and Termination. A
// Station (receiver) feeds routes into a bgp.RIB keyed by monitored
// peer.
package bmp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"manrsmeter/internal/bgp/wire"
)

// Version is the BMP version implemented (RFC 7854).
const Version = 3

// Message types (RFC 7854 §4).
const (
	TypeRouteMonitoring = 0
	TypeStatsReport     = 1
	TypePeerDown        = 2
	TypePeerUp          = 3
	TypeInitiation      = 4
	TypeTermination     = 5
)

// Information TLV types for Initiation/Termination.
const (
	TLVString  = 0
	TLVSysDesc = 1
	TLVSysName = 2
)

const (
	commonHeaderLen = 6
	perPeerLen      = 42
	maxMsgLen       = 1 << 20
)

// PeerHeader is the per-peer header carried by Route Monitoring, Peer Up
// and Peer Down messages.
type PeerHeader struct {
	// Addr is the monitored peer's address (IPv4 or IPv6).
	Addr netip.Addr
	// ASN and BGPID identify the peer.
	ASN   uint32
	BGPID [4]byte
	// Timestamp is when the router recorded the event.
	Timestamp time.Time
}

func (h *PeerHeader) encode(b []byte) []byte {
	b = append(b, 0) // peer type: global instance
	flags := byte(0)
	if h.Addr.Is6() && !h.Addr.Is4In6() {
		flags |= 0x80 // V flag: IPv6 peer address
	}
	b = append(b, flags)
	b = append(b, make([]byte, 8)...) // peer distinguisher
	var addr [16]byte
	if h.Addr.Is6() && !h.Addr.Is4In6() {
		addr = h.Addr.As16()
	} else if h.Addr.IsValid() {
		a4 := h.Addr.As4()
		copy(addr[12:], a4[:]) // v4 in the low 4 bytes per RFC 7854
	}
	b = append(b, addr[:]...)
	b = binary.BigEndian.AppendUint32(b, h.ASN)
	b = append(b, h.BGPID[:]...)
	b = binary.BigEndian.AppendUint32(b, uint32(h.Timestamp.Unix()))
	b = binary.BigEndian.AppendUint32(b, uint32(h.Timestamp.Nanosecond()/1000))
	return b
}

func decodePeerHeader(b []byte) (PeerHeader, []byte, error) {
	if len(b) < perPeerLen {
		return PeerHeader{}, nil, errors.New("bmp: per-peer header truncated")
	}
	var h PeerHeader
	flags := b[1]
	if flags&0x80 != 0 {
		h.Addr = netip.AddrFrom16([16]byte(b[10:26]))
	} else {
		h.Addr = netip.AddrFrom4([4]byte(b[22:26]))
	}
	h.ASN = binary.BigEndian.Uint32(b[26:30])
	copy(h.BGPID[:], b[30:34])
	sec := binary.BigEndian.Uint32(b[34:38])
	usec := binary.BigEndian.Uint32(b[38:42])
	h.Timestamp = time.Unix(int64(sec), int64(usec)*1000).UTC()
	return h, b[perPeerLen:], nil
}

// Message is any BMP message.
type Message interface {
	// Type returns the RFC 7854 message type code.
	Type() byte
	encodeBody() ([]byte, error)
}

// Initiation announces the monitored router to the station.
type Initiation struct {
	SysName string
	SysDesc string
}

// Type implements Message.
func (*Initiation) Type() byte { return TypeInitiation }

func (m *Initiation) encodeBody() ([]byte, error) {
	var b []byte
	b = appendTLV(b, TLVSysName, m.SysName)
	b = appendTLV(b, TLVSysDesc, m.SysDesc)
	return b, nil
}

// Termination ends the monitoring session.
type Termination struct {
	Reason string
}

// Type implements Message.
func (*Termination) Type() byte { return TypeTermination }

func (m *Termination) encodeBody() ([]byte, error) {
	return appendTLV(nil, TLVString, m.Reason), nil
}

// PeerUp reports a monitored BGP session reaching Established.
type PeerUp struct {
	Peer PeerHeader
	// LocalAddr is the router's address on the session.
	LocalAddr netip.Addr
}

// Type implements Message.
func (*PeerUp) Type() byte { return TypePeerUp }

func (m *PeerUp) encodeBody() ([]byte, error) {
	b := m.Peer.encode(nil)
	var addr [16]byte
	if m.LocalAddr.Is6() && !m.LocalAddr.Is4In6() {
		addr = m.LocalAddr.As16()
	} else if m.LocalAddr.IsValid() {
		a4 := m.LocalAddr.As4()
		copy(addr[12:], a4[:])
	}
	b = append(b, addr[:]...)
	b = binary.BigEndian.AppendUint16(b, 179) // local port
	b = binary.BigEndian.AppendUint16(b, 179) // remote port
	// Sent/received OPEN messages (full BGP PDUs).
	open, err := wire.Encode(wire.NewOpen(m.Peer.ASN, 90, m.Peer.BGPID))
	if err != nil {
		return nil, err
	}
	b = append(b, open...)
	b = append(b, open...)
	return b, nil
}

// PeerDown reports a monitored session ending.
type PeerDown struct {
	Peer PeerHeader
	// Reason is the RFC 7854 reason code (1 = local notification, 2 =
	// local no-notification, 3 = remote notification, 4 = remote
	// no-notification).
	Reason byte
}

// Type implements Message.
func (*PeerDown) Type() byte { return TypePeerDown }

func (m *PeerDown) encodeBody() ([]byte, error) {
	b := m.Peer.encode(nil)
	return append(b, m.Reason), nil
}

// RouteMonitoring carries one BGP UPDATE as seen from the monitored peer.
type RouteMonitoring struct {
	Peer   PeerHeader
	Update *wire.Update
}

// Type implements Message.
func (*RouteMonitoring) Type() byte { return TypeRouteMonitoring }

func (m *RouteMonitoring) encodeBody() ([]byte, error) {
	b := m.Peer.encode(nil)
	pdu, err := wire.Encode(m.Update)
	if err != nil {
		return nil, err
	}
	return append(b, pdu...), nil
}

func appendTLV(b []byte, typ uint16, val string) []byte {
	b = binary.BigEndian.AppendUint16(b, typ)
	b = binary.BigEndian.AppendUint16(b, uint16(len(val)))
	return append(b, val...)
}

func parseTLVs(b []byte) (map[uint16]string, error) {
	out := make(map[uint16]string)
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, errors.New("bmp: TLV truncated")
		}
		typ := binary.BigEndian.Uint16(b)
		l := int(binary.BigEndian.Uint16(b[2:]))
		if len(b) < 4+l {
			return nil, errors.New("bmp: TLV value truncated")
		}
		out[typ] = string(b[4 : 4+l])
		b = b[4+l:]
	}
	return out, nil
}

// Write encodes msg with the BMP common header and writes it to w.
func Write(w io.Writer, msg Message) error {
	body, err := msg.encodeBody()
	if err != nil {
		return err
	}
	hdr := make([]byte, commonHeaderLen)
	hdr[0] = Version
	binary.BigEndian.PutUint32(hdr[1:5], uint32(commonHeaderLen+len(body)))
	hdr[5] = msg.Type()
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// Read parses one BMP message from r.
func Read(r io.Reader) (Message, error) {
	var hdr [commonHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("bmp: unsupported version %d", hdr[0])
	}
	length := binary.BigEndian.Uint32(hdr[1:5])
	if length < commonHeaderLen || length > maxMsgLen {
		return nil, fmt.Errorf("bmp: message length %d out of bounds", length)
	}
	body := make([]byte, length-commonHeaderLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("bmp: truncated body: %w", err)
	}
	switch hdr[5] {
	case TypeInitiation:
		tlvs, err := parseTLVs(body)
		if err != nil {
			return nil, err
		}
		return &Initiation{SysName: tlvs[TLVSysName], SysDesc: tlvs[TLVSysDesc]}, nil
	case TypeTermination:
		tlvs, err := parseTLVs(body)
		if err != nil {
			return nil, err
		}
		return &Termination{Reason: tlvs[TLVString]}, nil
	case TypePeerUp:
		peer, rest, err := decodePeerHeader(body)
		if err != nil {
			return nil, err
		}
		if len(rest) < 20 {
			return nil, errors.New("bmp: peer up truncated")
		}
		var local netip.Addr
		if isZero(rest[:12]) {
			local = netip.AddrFrom4([4]byte(rest[12:16]))
		} else {
			local = netip.AddrFrom16([16]byte(rest[:16]))
		}
		return &PeerUp{Peer: peer, LocalAddr: local}, nil
	case TypePeerDown:
		peer, rest, err := decodePeerHeader(body)
		if err != nil {
			return nil, err
		}
		if len(rest) < 1 {
			return nil, errors.New("bmp: peer down truncated")
		}
		return &PeerDown{Peer: peer, Reason: rest[0]}, nil
	case TypeRouteMonitoring:
		peer, rest, err := decodePeerHeader(body)
		if err != nil {
			return nil, err
		}
		msg, err := wire.Decode(rest)
		if err != nil {
			return nil, fmt.Errorf("bmp: embedded BGP PDU: %w", err)
		}
		update, ok := msg.(*wire.Update)
		if !ok {
			return nil, fmt.Errorf("bmp: route monitoring wraps type %d, want UPDATE", msg.Type())
		}
		return &RouteMonitoring{Peer: peer, Update: update}, nil
	case TypeStatsReport:
		return nil, errors.New("bmp: stats report not implemented")
	default:
		return nil, fmt.Errorf("bmp: unknown message type %d", hdr[5])
	}
}

func isZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
