package bmp

import (
	"bufio"
	"context"
	"net"
	"net/netip"
	"sync"
	"time"

	"manrsmeter/internal/bgp"
	"manrsmeter/internal/netx"
)

// Station is a BMP monitoring station: it accepts connections from
// monitored routers and folds their Route Monitoring streams into one
// RIB, attributed to the monitored peers' ASNs. Connections are served
// through the netx.Server harness: per-read idle deadlines disconnect
// routers that go silent, a malformed stream only costs its own
// connection, and Close force-closes in-flight sessions.
type Station struct {
	rib *bgp.RIB

	mu      sync.Mutex
	routers map[string]string // sysName → sysDesc of connected routers
	peersUp map[netip.Addr]uint32

	srv *netx.Server
}

// DefaultStationIdleTimeout disconnects a router that sends nothing for
// this long. Real stations keep sessions for months; routers are
// expected to emit keepalive-ish traffic (stats, route churn) well
// within it.
const DefaultStationIdleTimeout = 5 * time.Minute

// NewStation returns an empty station.
func NewStation() *Station {
	s := &Station{
		rib:     bgp.NewRIB(),
		routers: make(map[string]string),
		peersUp: make(map[netip.Addr]uint32),
	}
	s.srv = &netx.Server{
		Handler:     s.serve,
		ReadTimeout: DefaultStationIdleTimeout,
	}
	return s
}

// SetIdleTimeout overrides the per-read idle deadline; call before
// Listen/Serve. Zero disables it.
func (s *Station) SetIdleTimeout(d time.Duration) { s.srv.ReadTimeout = d }

// RIB exposes the accumulated routes.
func (s *Station) RIB() *bgp.RIB { return s.rib }

// Routers returns the sysNames of routers that sent Initiation.
func (s *Station) Routers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.routers))
	for name := range s.routers {
		out = append(out, name)
	}
	return out
}

// PeersUp returns the number of monitored peers currently up.
func (s *Station) PeersUp() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peersUp)
}

// Listen starts accepting BMP connections on addr.
func (s *Station) Listen(addr string) (net.Addr, error) {
	return s.srv.Listen(addr)
}

// Serve accepts BMP connections from an existing listener.
func (s *Station) Serve(ln net.Listener) error {
	return s.srv.Serve(ln)
}

// Close stops the station and force-closes active sessions.
func (s *Station) Close() error {
	return s.srv.Close()
}

// Shutdown stops the station and waits for connected routers' streams
// to drain, force-closing whatever remains when ctx expires.
func (s *Station) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

func (s *Station) serve(ctx context.Context, conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		msg, err := Read(br)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *Initiation:
			s.mu.Lock()
			s.routers[m.SysName] = m.SysDesc
			s.mu.Unlock()
		case *PeerUp:
			s.mu.Lock()
			s.peersUp[m.Peer.Addr] = m.Peer.ASN
			s.mu.Unlock()
		case *PeerDown:
			s.mu.Lock()
			delete(s.peersUp, m.Peer.Addr)
			s.mu.Unlock()
		case *RouteMonitoring:
			s.rib.Apply(m.Peer.ASN, m.Update)
		case *Termination:
			return
		}
	}
}
