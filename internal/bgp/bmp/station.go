package bmp

import (
	"bufio"
	"net"
	"net/netip"
	"sync"

	"manrsmeter/internal/bgp"
)

// Station is a BMP monitoring station: it accepts connections from
// monitored routers and folds their Route Monitoring streams into one
// RIB, attributed to the monitored peers' ASNs.
type Station struct {
	rib *bgp.RIB

	mu      sync.Mutex
	routers map[string]string // sysName → sysDesc of connected routers
	peersUp map[netip.Addr]uint32

	ln net.Listener
	wg sync.WaitGroup
}

// NewStation returns an empty station.
func NewStation() *Station {
	return &Station{
		rib:     bgp.NewRIB(),
		routers: make(map[string]string),
		peersUp: make(map[netip.Addr]uint32),
	}
}

// RIB exposes the accumulated routes.
func (s *Station) RIB() *bgp.RIB { return s.rib }

// Routers returns the sysNames of routers that sent Initiation.
func (s *Station) Routers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.routers))
	for name := range s.routers {
		out = append(out, name)
	}
	return out
}

// PeersUp returns the number of monitored peers currently up.
func (s *Station) PeersUp() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peersUp)
}

// Listen starts accepting BMP connections on addr.
func (s *Station) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				s.serve(conn)
			}()
		}
	}()
	return ln.Addr(), nil
}

// Close stops the station.
func (s *Station) Close() error {
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Station) serve(conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		msg, err := Read(br)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *Initiation:
			s.mu.Lock()
			s.routers[m.SysName] = m.SysDesc
			s.mu.Unlock()
		case *PeerUp:
			s.mu.Lock()
			s.peersUp[m.Peer.Addr] = m.Peer.ASN
			s.mu.Unlock()
		case *PeerDown:
			s.mu.Lock()
			delete(s.peersUp, m.Peer.Addr)
			s.mu.Unlock()
		case *RouteMonitoring:
			s.rib.Apply(m.Peer.ASN, m.Update)
		case *Termination:
			return
		}
	}
}
