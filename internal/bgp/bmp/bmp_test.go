package bmp

import (
	"bytes"
	"math/rand"
	"net"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
)

func pfx(s string) netx.Prefix { return netx.MustParsePrefix(s) }

var ts = time.Date(2022, 5, 1, 12, 30, 0, 123000000, time.UTC)

func peerHdr(addr string, asn uint32) PeerHeader {
	return PeerHeader{
		Addr:      netip.MustParseAddr(addr),
		ASN:       asn,
		BGPID:     [4]byte{1, 2, 3, 4},
		Timestamp: ts,
	}
}

func sampleUpdate() *wire.Update {
	return &wire.Update{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{64500, 64999}}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netx.Prefix{pfx("10.0.0.0/8")},
	}
}

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func TestInitiationTerminationRoundTrip(t *testing.T) {
	init := roundTrip(t, &Initiation{SysName: "edge-1", SysDesc: "manrsmeter router"}).(*Initiation)
	if init.SysName != "edge-1" || init.SysDesc != "manrsmeter router" {
		t.Errorf("initiation = %+v", init)
	}
	term := roundTrip(t, &Termination{Reason: "maintenance"}).(*Termination)
	if term.Reason != "maintenance" {
		t.Errorf("termination = %+v", term)
	}
}

func TestPeerUpDownRoundTrip(t *testing.T) {
	up := roundTrip(t, &PeerUp{Peer: peerHdr("192.0.2.7", 64500), LocalAddr: netip.MustParseAddr("192.0.2.1")}).(*PeerUp)
	if up.Peer.ASN != 64500 || up.Peer.Addr != netip.MustParseAddr("192.0.2.7") {
		t.Errorf("peer up = %+v", up.Peer)
	}
	if up.LocalAddr != netip.MustParseAddr("192.0.2.1") {
		t.Errorf("local addr = %v", up.LocalAddr)
	}
	if !up.Peer.Timestamp.Equal(ts.Truncate(time.Microsecond)) {
		t.Errorf("timestamp = %v", up.Peer.Timestamp)
	}

	down := roundTrip(t, &PeerDown{Peer: peerHdr("192.0.2.7", 64500), Reason: 3}).(*PeerDown)
	if down.Reason != 3 || down.Peer.ASN != 64500 {
		t.Errorf("peer down = %+v", down)
	}
}

func TestPeerUpIPv6(t *testing.T) {
	up := roundTrip(t, &PeerUp{Peer: peerHdr("2001:db8::7", 4200000001), LocalAddr: netip.MustParseAddr("2001:db8::1")}).(*PeerUp)
	if up.Peer.Addr != netip.MustParseAddr("2001:db8::7") || up.Peer.ASN != 4200000001 {
		t.Errorf("v6 peer = %+v", up.Peer)
	}
	if up.LocalAddr != netip.MustParseAddr("2001:db8::1") {
		t.Errorf("v6 local = %v", up.LocalAddr)
	}
}

func TestRouteMonitoringRoundTrip(t *testing.T) {
	rm := roundTrip(t, &RouteMonitoring{Peer: peerHdr("192.0.2.7", 64500), Update: sampleUpdate()}).(*RouteMonitoring)
	if !reflect.DeepEqual(rm.Update, sampleUpdate()) {
		t.Errorf("embedded update = %+v", rm.Update)
	}
	if rm.Peer.ASN != 64500 {
		t.Errorf("peer = %+v", rm.Peer)
	}
}

func TestReadErrors(t *testing.T) {
	// Wrong version.
	bad := []byte{9, 0, 0, 0, 6, TypeInitiation}
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("wrong version should fail")
	}
	// Absurd length.
	bad = []byte{Version, 0xFF, 0xFF, 0xFF, 0xFF, TypeInitiation}
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("oversized length should fail")
	}
	// Unknown type.
	bad = []byte{Version, 0, 0, 0, 6, 99}
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("unknown type should fail")
	}
	// Route monitoring wrapping a non-UPDATE PDU.
	var buf bytes.Buffer
	hdr := peerHdr("192.0.2.7", 1)
	body := hdr.encode(nil)
	keepalive, _ := wire.Encode(&wire.Keepalive{})
	body = append(body, keepalive...)
	frame := []byte{Version, 0, 0, 0, 0, TypeRouteMonitoring}
	frame = append(frame, body...)
	frame[1] = byte(len(frame) >> 24)
	frame[2] = byte(len(frame) >> 16)
	frame[3] = byte(len(frame) >> 8)
	frame[4] = byte(len(frame))
	buf.Write(frame)
	if _, err := Read(&buf); err == nil {
		t.Error("non-UPDATE payload should fail")
	}
}

func TestReadNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(128)
		raw := make([]byte, commonHeaderLen+n)
		r.Read(raw)
		raw[0] = Version
		raw[1], raw[2] = 0, 0
		raw[3] = byte((commonHeaderLen + n) >> 8)
		raw[4] = byte(commonHeaderLen + n)
		raw[5] = byte(r.Intn(7))
		_, _ = Read(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestStationEndToEnd(t *testing.T) {
	st := NewStation()
	addr, err := st.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(m Message) {
		t.Helper()
		if err := Write(conn, m); err != nil {
			t.Fatal(err)
		}
	}
	send(&Initiation{SysName: "edge-1", SysDesc: "test router"})
	send(&PeerUp{Peer: peerHdr("192.0.2.7", 64500), LocalAddr: netip.MustParseAddr("192.0.2.1")})
	send(&RouteMonitoring{Peer: peerHdr("192.0.2.7", 64500), Update: sampleUpdate()})

	waitFor(t, func() bool { return st.RIB().Len() == 1 && st.PeersUp() == 1 })
	routes := st.RIB().Lookup(pfx("10.0.0.0/8"))
	if len(routes) != 1 || routes[0].Origin != 64999 || routes[0].PeerASN != 64500 {
		t.Fatalf("routes = %+v", routes)
	}
	names := st.Routers()
	if len(names) != 1 || names[0] != "edge-1" {
		t.Errorf("routers = %v", names)
	}

	// Withdraw via route monitoring, then peer down.
	send(&RouteMonitoring{Peer: peerHdr("192.0.2.7", 64500), Update: &wire.Update{Withdrawn: []netx.Prefix{pfx("10.0.0.0/8")}}})
	waitFor(t, func() bool { return st.RIB().Len() == 0 })
	send(&PeerDown{Peer: peerHdr("192.0.2.7", 64500), Reason: 2})
	waitFor(t, func() bool { return st.PeersUp() == 0 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
