package bgp

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
)

func pfx(s string) netx.Prefix { return netx.MustParsePrefix(s) }

// establishPair runs the symmetric handshake over an in-memory pipe.
func establishPair(t *testing.T) (*Session, *Session) {
	t.Helper()
	c1, c2 := net.Pipe()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Establish(c2, Config{ASN: 64501, BGPID: [4]byte{2, 2, 2, 2}}, 5*time.Second)
		ch <- res{s, err}
	}()
	a, err := Establish(c1, Config{ASN: 4200000001, BGPID: [4]byte{1, 1, 1, 1}}, 5*time.Second)
	if err != nil {
		t.Fatalf("Establish A: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("Establish B: %v", r.err)
	}
	t.Cleanup(func() { a.Close(); r.s.Close() })
	return a, r.s
}

func TestEstablishHandshake(t *testing.T) {
	a, b := establishPair(t)
	if a.State() != StateEstablished || b.State() != StateEstablished {
		t.Fatalf("states = %v / %v", a.State(), b.State())
	}
	if a.PeerASN() != 64501 {
		t.Errorf("A sees peer ASN %d", a.PeerASN())
	}
	if b.PeerASN() != 4200000001 {
		t.Errorf("B sees peer ASN %d (4-octet cap must carry the real ASN)", b.PeerASN())
	}
	if a.PeerID() != [4]byte{2, 2, 2, 2} {
		t.Errorf("A sees peer ID %v", a.PeerID())
	}
}

func TestUpdateExchangeAndRIB(t *testing.T) {
	a, b := establishPair(t)
	rib := NewRIB()

	u := &wire.Update{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{4200000001, 64999}}},
		NextHop: mustAddr("192.0.2.1"),
		NLRI:    []netx.Prefix{pfx("198.51.100.0/24"), pfx("203.0.113.0/24")},
	}
	done := make(chan error, 1)
	go func() { done <- a.SendUpdate(u) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("SendUpdate: %v", err)
	}
	rib.Apply(b.PeerASN(), got)
	if rib.Len() != 2 {
		t.Fatalf("RIB len = %d", rib.Len())
	}
	rs := rib.Lookup(pfx("198.51.100.0/24"))
	if len(rs) != 1 || rs[0].Origin != 64999 || rs[0].PeerASN != 4200000001 {
		t.Errorf("route = %+v", rs)
	}

	// Withdraw one prefix.
	w := &wire.Update{Withdrawn: []netx.Prefix{pfx("198.51.100.0/24")}}
	go func() { done <- a.SendUpdate(w) }()
	got, err = b.Recv()
	if err != nil {
		t.Fatalf("Recv withdraw: %v", err)
	}
	<-done
	rib.Apply(b.PeerASN(), got)
	if rib.Len() != 1 {
		t.Errorf("RIB len after withdraw = %d", rib.Len())
	}
	if rs := rib.Lookup(pfx("198.51.100.0/24")); len(rs) != 0 {
		t.Errorf("withdrawn route still present: %v", rs)
	}
}

func TestRecvAbsorbsKeepalives(t *testing.T) {
	a, b := establishPair(t)
	done := make(chan error, 2)
	go func() {
		done <- a.SendKeepalive()
		done <- a.SendUpdate(&wire.Update{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{1}}},
			NextHop: mustAddr("192.0.2.1"),
			NLRI:    []netx.Prefix{pfx("10.0.0.0/8")},
		})
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if len(got.NLRI) != 1 {
		t.Errorf("update = %+v", got)
	}
	<-done
	<-done
}

func TestCloseDeliversNotification(t *testing.T) {
	a, b := establishPair(t)
	go a.Close()
	_, err := b.Recv()
	var notif *wire.Notification
	if !errors.As(err, &notif) {
		t.Fatalf("Recv after close = %v, want notification", err)
	}
	if notif.Code != 6 {
		t.Errorf("notification code = %d, want 6 (Cease)", notif.Code)
	}
	if b.State() != StateClosed {
		t.Errorf("receiver state = %v", b.State())
	}
	// SendUpdate on closed session fails.
	if err := a.SendUpdate(&wire.Update{}); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("send on closed = %v", err)
	}
	// Double close is a no-op.
	if err := a.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestEstablishOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			ch <- res{nil, err}
			return
		}
		s, err := Establish(conn, Config{ASN: 65000, BGPID: [4]byte{9, 9, 9, 9}}, 5*time.Second)
		ch <- res{s, err}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := Establish(conn, Config{ASN: 65001, BGPID: [4]byte{8, 8, 8, 8}, HoldTime: 30 * time.Second}, 5*time.Second)
	if err != nil {
		t.Fatalf("client establish: %v", err)
	}
	defer client.Close()
	r := <-ch
	if r.err != nil {
		t.Fatalf("server establish: %v", r.err)
	}
	defer r.s.Close()
	if client.PeerASN() != 65000 || r.s.PeerASN() != 65001 {
		t.Errorf("peer ASNs = %d / %d", client.PeerASN(), r.s.PeerASN())
	}
}

func TestRIBMultiPeer(t *testing.T) {
	rib := NewRIB()
	u := &wire.Update{
		ASPath: []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{100, 300}}},
		NLRI:   []netx.Prefix{pfx("10.0.0.0/8")},
	}
	rib.Apply(100, u)
	u2 := &wire.Update{
		ASPath: []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{200, 300}}},
		NLRI:   []netx.Prefix{pfx("10.0.0.0/8")},
	}
	rib.Apply(200, u2)
	if got := len(rib.Lookup(pfx("10.0.0.0/8"))); got != 2 {
		t.Fatalf("routes from two peers = %d", got)
	}
	// Re-announcement from peer 100 replaces, not duplicates.
	rib.Apply(100, u)
	if got := len(rib.Lookup(pfx("10.0.0.0/8"))); got != 2 {
		t.Fatalf("after re-announce = %d", got)
	}
	// Withdraw from one peer leaves the other's route.
	rib.Apply(100, &wire.Update{Withdrawn: []netx.Prefix{pfx("10.0.0.0/8")}})
	rs := rib.Lookup(pfx("10.0.0.0/8"))
	if len(rs) != 1 || rs[0].PeerASN != 200 {
		t.Fatalf("after peer-100 withdraw: %v", rs)
	}
	n := 0
	rib.Walk(func(Route) bool { n++; return true })
	if n != rib.Len() {
		t.Errorf("walk count %d != len %d", n, rib.Len())
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		StateIdle: "Idle", StateOpenSent: "OpenSent", StateOpenConfirm: "OpenConfirm",
		StateEstablished: "Established", StateClosed: "Closed", State(42): "State(42)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), str)
		}
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestStartKeepalives(t *testing.T) {
	a, b := establishPair(t)
	stop := a.StartKeepalives(20 * time.Millisecond)
	defer stop()

	// The peer sees periodic keepalives; Recv absorbs them until an
	// update arrives.
	errCh := make(chan error, 1)
	go func() {
		time.Sleep(80 * time.Millisecond) // let several keepalives flow
		errCh <- a.SendUpdate(&wire.Update{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{1}}},
			NextHop: mustAddr("192.0.2.1"),
			NLRI:    []netx.Prefix{pfx("10.0.0.0/8")},
		})
	}()
	u, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(u.NLRI) != 1 {
		t.Errorf("update = %+v", u)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent
	// Keepalives on a closed session stop silently.
	a.Close()
	stop2 := a.StartKeepalives(5 * time.Millisecond)
	defer stop2()
	time.Sleep(20 * time.Millisecond)
}

func TestEstablishRejectsBadVersion(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	// A raw peer that sends a version-3 OPEN.
	go func() {
		open := wire.NewOpen(64500, 90, [4]byte{9, 9, 9, 9})
		open.Version = 3
		_ = wire.WriteMessage(c2, open)
		// Drain our OPEN so the pipe does not block.
		_, _ = wire.ReadMessage(c2)
		_, _ = wire.ReadMessage(c2) // maybe the notification
	}()
	_, err := Establish(c1, Config{ASN: 65000, BGPID: [4]byte{1, 1, 1, 1}}, 2*time.Second)
	if err == nil {
		t.Fatal("version 3 peer should be rejected")
	}
}

func TestEstablishRejectsNonOpenFirst(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		_ = wire.WriteMessage(c2, &wire.Keepalive{})
		_, _ = wire.ReadMessage(c2)
	}()
	_, err := Establish(c1, Config{ASN: 65000, BGPID: [4]byte{1, 1, 1, 1}}, 2*time.Second)
	if err == nil {
		t.Fatal("keepalive-first peer should be rejected")
	}
}

func TestEstablishNotificationInsteadOfKeepalive(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		// Play a well-behaved OPEN, then refuse with a notification.
		_, _ = wire.ReadMessage(c2) // their OPEN
		_ = wire.WriteMessage(c2, wire.NewOpen(64500, 90, [4]byte{9, 9, 9, 9}))
		_, _ = wire.ReadMessage(c2) // their keepalive
		_ = wire.WriteMessage(c2, &wire.Notification{Code: 6, Subcode: 7})
	}()
	_, err := Establish(c1, Config{ASN: 65000, BGPID: [4]byte{1, 1, 1, 1}}, 2*time.Second)
	var notif *wire.Notification
	if !errors.As(err, &notif) || notif.Subcode != 7 {
		t.Fatalf("err = %v, want the peer's notification", err)
	}
}

func TestEstablishTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(2 * time.Second) // silent peer
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_, err = Establish(conn, Config{ASN: 65000, BGPID: [4]byte{1, 1, 1, 1}}, 300*time.Millisecond)
	if err == nil {
		t.Fatal("silent peer should time out")
	}
	if time.Since(start) > 1500*time.Millisecond {
		t.Errorf("timeout took %v", time.Since(start))
	}
}

func TestRIBMPReachApply(t *testing.T) {
	rib := NewRIB()
	u := &wire.Update{
		ASPath:    []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{100, 200}}},
		MPNextHop: netip.MustParseAddr("2001:db8::1"),
		MPReach:   []netx.Prefix{pfx("2001:db8:1::/48")},
	}
	rib.Apply(100, u)
	rs := rib.Lookup(pfx("2001:db8:1::/48"))
	if len(rs) != 1 || rs[0].Origin != 200 {
		t.Fatalf("v6 route = %+v", rs)
	}
	rib.Apply(100, &wire.Update{MPUnreach: []netx.Prefix{pfx("2001:db8:1::/48")}})
	if rib.Len() != 0 {
		t.Errorf("v6 withdraw failed, len=%d", rib.Len())
	}
}

// scriptedPeer runs the handshake by hand on conn, advertising hold
// seconds, and returns once established. It never sends keepalives, so
// the other side's hold timer runs out.
func scriptedPeer(t *testing.T, conn net.Conn, hold uint16) {
	t.Helper()
	if err := wire.WriteMessage(conn, wire.NewOpen(64999, hold, [4]byte{9, 9, 9, 9})); err != nil {
		t.Errorf("scripted OPEN: %v", err)
		return
	}
	if _, err := wire.ReadMessage(conn); err != nil { // their OPEN
		t.Errorf("scripted read OPEN: %v", err)
		return
	}
	if err := wire.WriteMessage(conn, &wire.Keepalive{}); err != nil {
		t.Errorf("scripted KEEPALIVE: %v", err)
		return
	}
	if _, err := wire.ReadMessage(conn); err != nil { // their KEEPALIVE
		t.Errorf("scripted read KEEPALIVE: %v", err)
	}
}

func TestHoldTimeNegotiation(t *testing.T) {
	c1, c2 := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		scriptedPeer(t, c2, 30)
	}()
	s, err := Establish(c1, Config{ASN: 65000, BGPID: [4]byte{1, 1, 1, 1}, HoldTime: 90 * time.Second}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	defer s.Close()
	if got := s.HoldTime(); got != 30*time.Second {
		t.Errorf("negotiated hold = %v, want 30s (min of 90 and 30)", got)
	}
}

func TestHoldTimerExpiryTearsDownWithNotification(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	handshaken := make(chan struct{})
	go func() {
		scriptedPeer(t, c2, 1) // 1s hold, then silence
		close(handshaken)
	}()
	s, err := Establish(c1, Config{ASN: 65000, BGPID: [4]byte{1, 1, 1, 1}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	<-handshaken
	if s.HoldTime() != time.Second {
		t.Fatalf("negotiated hold = %v, want 1s", s.HoldTime())
	}

	// The silent peer reads what the session sends on expiry.
	peerGot := make(chan wire.Message, 1)
	go func() {
		_ = c2.SetReadDeadline(time.Now().Add(5 * time.Second))
		msg, err := wire.ReadMessage(c2)
		if err != nil {
			peerGot <- nil
			return
		}
		peerGot <- msg
	}()

	start := time.Now()
	_, err = s.Recv()
	if !errors.Is(err, ErrHoldTimerExpired) {
		t.Fatalf("Recv = %v, want ErrHoldTimerExpired", err)
	}
	if d := time.Since(start); d < 900*time.Millisecond || d > 4*time.Second {
		t.Errorf("expired after %v, want ≈1s", d)
	}
	if s.State() != StateClosed {
		t.Errorf("state after expiry = %v, want Closed", s.State())
	}
	msg := <-peerGot
	notif, ok := msg.(*wire.Notification)
	if !ok {
		t.Fatalf("peer received %T, want NOTIFICATION", msg)
	}
	if notif.Code != 4 {
		t.Errorf("notification code = %d, want 4 (Hold Timer Expired)", notif.Code)
	}
	// Further operations fail with ErrSessionClosed.
	if err := s.SendKeepalive(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("SendKeepalive after expiry = %v", err)
	}
}

func TestKeepalivesPreventHoldExpiry(t *testing.T) {
	c1, c2 := net.Pipe()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Establish(c2, Config{ASN: 64501, BGPID: [4]byte{2, 2, 2, 2}, HoldTime: time.Second}, 5*time.Second)
		ch <- res{s, err}
	}()
	a, err := Establish(c1, Config{ASN: 64500, BGPID: [4]byte{1, 1, 1, 1}, HoldTime: time.Second}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	b := r.s
	defer a.Close()
	defer b.Close()

	// Both pump keepalives at hold/3; neither side may expire across
	// several hold periods.
	stopA := a.StartKeepalives(0)
	defer stopA()
	stopB := b.StartKeepalives(0)
	defer stopB()

	errs := make(chan error, 2)
	go func() { _, err := a.Recv(); errs <- err }()
	go func() { _, err := b.Recv(); errs <- err }()
	select {
	case err := <-errs:
		t.Fatalf("session died despite keepalives: %v", err)
	case <-time.After(2500 * time.Millisecond):
	}
}

func TestRIBRemovePeer(t *testing.T) {
	rib := NewRIB()
	for i, peer := range []uint32{100, 100, 200} {
		rib.Apply(peer, &wire.Update{
			ASPath: []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{peer}}},
			NLRI:   []netx.Prefix{pfx(fmt.Sprintf("10.%d.0.0/16", i))},
		})
	}
	if rib.Len() != 3 {
		t.Fatalf("len = %d", rib.Len())
	}
	if removed := rib.RemovePeer(100); removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	if rib.Len() != 1 {
		t.Errorf("len after removal = %d, want 1", rib.Len())
	}
	if removed := rib.RemovePeer(100); removed != 0 {
		t.Errorf("second removal = %d, want 0", removed)
	}
	if len(rib.Lookup(pfx("10.2.0.0/16"))) != 1 {
		t.Error("peer 200's route should survive")
	}
}

func TestRIBWalkEarlyStop(t *testing.T) {
	rib := NewRIB()
	for i := 0; i < 5; i++ {
		rib.Apply(uint32(100+i), &wire.Update{
			ASPath: []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{uint32(100 + i)}}},
			NLRI:   []netx.Prefix{pfx("10.0.0.0/8")},
		})
	}
	n := 0
	rib.Walk(func(Route) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stopped walk visited %d", n)
	}
}
