package mrt

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"manrsmeter/internal/netx"
)

func pfx(s string) netx.Prefix { return netx.MustParsePrefix(s) }

var ts = time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)

func samplePeers() []Peer {
	return []Peer{
		{BGPID: [4]byte{1, 1, 1, 1}, Addr: netip.MustParseAddr("192.0.2.1"), ASN: 64500},
		{BGPID: [4]byte{2, 2, 2, 2}, Addr: netip.MustParseAddr("2001:db8::2"), ASN: 4200000001},
	}
}

func writeSample(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, ts)
	if err := w.WritePeerIndexTable([4]byte{9, 9, 9, 9}, "rib-view", samplePeers()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(pfx("10.0.0.0/8"), []RIBEntry{
		{PeerIndex: 0, OriginatedTime: ts, Path: []uint32{64500, 65010, 65020}},
		{PeerIndex: 1, OriginatedTime: ts, Path: []uint32{4200000001, 65020}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(pfx("2001:db8::/32"), []RIBEntry{
		{PeerIndex: 1, OriginatedTime: ts, Path: []uint32{4200000001, 65030}},
	}); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRoundTrip(t *testing.T) {
	buf := writeSample(t)
	d, err := NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if d.CollectorID != [4]byte{9, 9, 9, 9} || d.ViewName != "rib-view" {
		t.Errorf("header = %v %q", d.CollectorID, d.ViewName)
	}
	if !d.Timestamp.Equal(ts) {
		t.Errorf("timestamp = %v", d.Timestamp)
	}
	if !reflect.DeepEqual(d.Peers, samplePeers()) {
		t.Errorf("peers = %+v", d.Peers)
	}
	if len(d.Records) != 2 {
		t.Fatalf("records = %d", len(d.Records))
	}
	r0 := d.Records[0]
	if r0.Prefix != pfx("10.0.0.0/8") || r0.Sequence != 0 {
		t.Errorf("record 0 = %+v", r0)
	}
	if len(r0.Entries) != 2 {
		t.Fatalf("record 0 entries = %d", len(r0.Entries))
	}
	if !reflect.DeepEqual(r0.Entries[0].Path, []uint32{64500, 65010, 65020}) {
		t.Errorf("entry path = %v", r0.Entries[0].Path)
	}
	if !r0.Entries[0].OriginatedTime.Equal(ts) {
		t.Errorf("originated = %v", r0.Entries[0].OriginatedTime)
	}
	r1 := d.Records[1]
	if r1.Prefix != pfx("2001:db8::/32") || r1.Sequence != 1 {
		t.Errorf("record 1 = %+v", r1)
	}
	if !reflect.DeepEqual(r1.Entries[0].Path, []uint32{4200000001, 65030}) {
		t.Errorf("v6 path = %v", r1.Entries[0].Path)
	}
}

func TestWriterOrderEnforced(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, ts)
	if err := w.WriteRIB(pfx("10.0.0.0/8"), nil); err == nil {
		t.Error("RIB before peer table should fail")
	}
	if err := w.WritePeerIndexTable([4]byte{1, 2, 3, 4}, "v", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePeerIndexTable([4]byte{1, 2, 3, 4}, "v", nil); err == nil {
		t.Error("second peer table should fail")
	}
}

func TestReaderErrors(t *testing.T) {
	// Empty stream.
	if _, err := NewReader(strings.NewReader("")).ReadAll(); err == nil {
		t.Error("empty stream should fail")
	}
	// Stream not starting with peer index table.
	var buf bytes.Buffer
	w := NewWriter(&buf, ts)
	w.wrote = true // bypass ordering check
	if err := w.WriteRIB(pfx("10.0.0.0/8"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(&buf).ReadAll(); err == nil {
		t.Error("missing peer table should fail")
	}
	// Truncated body.
	full := writeSample(t).Bytes()
	if _, err := NewReader(bytes.NewReader(full[:len(full)-5])).ReadAll(); err == nil {
		t.Error("truncated stream should fail")
	}
	// Bad record type.
	bad := bytes.Clone(full)
	bad[5] = 99 // type field low byte
	if _, err := NewReader(bytes.NewReader(bad)).ReadAll(); err == nil {
		t.Error("wrong type should fail")
	}
}

func TestPeerIndexOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, ts)
	if err := w.WritePeerIndexTable([4]byte{1, 1, 1, 1}, "v", samplePeers()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(pfx("10.0.0.0/8"), []RIBEntry{
		{PeerIndex: 7, OriginatedTime: ts, Path: []uint32{1}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(&buf).ReadAll(); err == nil {
		t.Error("out-of-range peer index should fail")
	}
}

func TestEmptyView(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, ts)
	if err := w.WritePeerIndexTable([4]byte{0, 0, 0, 0}, "", nil); err != nil {
		t.Fatal(err)
	}
	d, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Peers) != 0 || len(d.Records) != 0 || d.ViewName != "" {
		t.Errorf("dump = %+v", d)
	}
}

func TestDefaultRouteRecord(t *testing.T) {
	// A /0 prefix has zero prefix bytes on the wire.
	var buf bytes.Buffer
	w := NewWriter(&buf, ts)
	if err := w.WritePeerIndexTable([4]byte{1, 1, 1, 1}, "v", samplePeers()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(pfx("0.0.0.0/0"), []RIBEntry{
		{PeerIndex: 0, OriginatedTime: ts, Path: []uint32{64500}},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if d.Records[0].Prefix != pfx("0.0.0.0/0") {
		t.Errorf("prefix = %v", d.Records[0].Prefix)
	}
}
