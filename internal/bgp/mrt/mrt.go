// Package mrt implements the MRT export format (RFC 6396) subset used by
// RouteViews and RIPE RIS RIB archives: TABLE_DUMP_V2 with a
// PEER_INDEX_TABLE record followed by RIB_IPV4_UNICAST and
// RIB_IPV6_UNICAST records. The simulated collector writes its RIB in
// this format and the analysis pipeline reads it back, exactly as the
// paper's pipeline consumes RouteViews dumps.
package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
)

// MRT type and subtype codes (RFC 6396 §4).
const (
	TypeTableDumpV2 = 13

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2
	SubtypeRIBIPv6Unicast = 4
)

// Peer describes one collector peer in the PEER_INDEX_TABLE.
type Peer struct {
	BGPID [4]byte
	Addr  netip.Addr
	ASN   uint32
}

// RIBEntry is one path for a prefix, attributed to a peer by index.
type RIBEntry struct {
	PeerIndex      uint16
	OriginatedTime time.Time
	// Path is the flattened AS path.
	Path []uint32
}

// RIBRecord is one RIB_IPVx_UNICAST record: a prefix plus the entries
// (one per peer) the collector holds for it.
type RIBRecord struct {
	Sequence uint32
	Prefix   netx.Prefix
	Entries  []RIBEntry
}

// Writer emits a TABLE_DUMP_V2 stream: the peer table first, then RIB
// records in the order given.
type Writer struct {
	w     io.Writer
	seq   uint32
	stamp time.Time
	wrote bool
}

// NewWriter returns a Writer stamping records with ts.
func NewWriter(w io.Writer, ts time.Time) *Writer {
	return &Writer{w: w, stamp: ts}
}

func (w *Writer) writeRecord(subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(w.stamp.Unix()))
	binary.BigEndian.PutUint16(hdr[4:6], TypeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(body)
	return err
}

// WritePeerIndexTable writes the PEER_INDEX_TABLE record. It must be
// called exactly once, before any RIB record.
func (w *Writer) WritePeerIndexTable(collectorID [4]byte, viewName string, peers []Peer) error {
	if w.wrote {
		return errors.New("mrt: peer index table must be the first record")
	}
	w.wrote = true
	var b []byte
	b = append(b, collectorID[:]...)
	if len(viewName) > 0xFFFF {
		return errors.New("mrt: view name too long")
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(viewName)))
	b = append(b, viewName...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(peers)))
	for _, p := range peers {
		// Peer type: bit 0 = IPv6 address, bit 1 = 4-octet ASN (always).
		ptype := byte(0x02)
		if p.Addr.Is6() && !p.Addr.Is4In6() {
			ptype |= 0x01
		}
		b = append(b, ptype)
		b = append(b, p.BGPID[:]...)
		if ptype&0x01 != 0 {
			a := p.Addr.As16()
			b = append(b, a[:]...)
		} else {
			a := p.Addr.As4()
			b = append(b, a[:]...)
		}
		b = binary.BigEndian.AppendUint32(b, p.ASN)
	}
	return w.writeRecord(SubtypePeerIndexTable, b)
}

// WriteRIB writes one RIB record for prefix with the given entries. The
// sequence number is assigned automatically.
func (w *Writer) WriteRIB(prefix netx.Prefix, entries []RIBEntry) error {
	if !w.wrote {
		return errors.New("mrt: peer index table must be written first")
	}
	subtype := uint16(SubtypeRIBIPv4Unicast)
	if prefix.Is6() {
		subtype = SubtypeRIBIPv6Unicast
	}
	var b []byte
	b = binary.BigEndian.AppendUint32(b, w.seq)
	w.seq++
	b = append(b, byte(prefix.Bits()))
	nbytes := (prefix.Bits() + 7) / 8
	if prefix.Is6() {
		a := prefix.Addr().As16()
		b = append(b, a[:nbytes]...)
	} else {
		a := prefix.Addr().As4()
		b = append(b, a[:nbytes]...)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(entries)))
	for _, e := range entries {
		b = binary.BigEndian.AppendUint16(b, e.PeerIndex)
		b = binary.BigEndian.AppendUint32(b, uint32(e.OriginatedTime.Unix()))
		attrs, err := encodePathAttrs(prefix, e.Path)
		if err != nil {
			return err
		}
		if len(attrs) > 0xFFFF {
			return errors.New("mrt: attributes too long")
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(attrs)))
		b = append(b, attrs...)
	}
	return w.writeRecord(subtype, b)
}

func encodePathAttrs(prefix netx.Prefix, path []uint32) ([]byte, error) {
	u := &wire.Update{
		Origin: wire.OriginIGP,
		ASPath: []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: path}},
	}
	if prefix.Is6() {
		u.MPReach = []netx.Prefix{prefix}
		u.MPNextHop = netip.MustParseAddr("2001:db8::1")
	} else {
		u.NLRI = []netx.Prefix{prefix}
		u.NextHop = netip.AddrFrom4([4]byte{192, 0, 2, 1})
	}
	return wire.EncodeAttributes(u)
}

// Dump is a fully parsed TABLE_DUMP_V2 file.
type Dump struct {
	CollectorID [4]byte
	ViewName    string
	Peers       []Peer
	Records     []RIBRecord
	Timestamp   time.Time
}

// Reader parses TABLE_DUMP_V2 streams.
type Reader struct {
	r io.Reader
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadAll parses the whole stream into a Dump. The first record must be
// the PEER_INDEX_TABLE.
func (rd *Reader) ReadAll() (*Dump, error) {
	d := &Dump{}
	first := true
	for {
		subtype, ts, body, err := rd.readRecord()
		if err == io.EOF {
			if first {
				return nil, errors.New("mrt: empty stream")
			}
			return d, nil
		}
		if err != nil {
			return nil, err
		}
		if first {
			if subtype != SubtypePeerIndexTable {
				return nil, fmt.Errorf("mrt: first record subtype %d, want peer index table", subtype)
			}
			d.Timestamp = ts
			if err := d.parsePeerIndex(body); err != nil {
				return nil, err
			}
			first = false
			continue
		}
		switch subtype {
		case SubtypeRIBIPv4Unicast, SubtypeRIBIPv6Unicast:
			rec, err := parseRIB(body, subtype == SubtypeRIBIPv6Unicast)
			if err != nil {
				return nil, err
			}
			if err := d.checkPeerIndexes(rec); err != nil {
				return nil, err
			}
			d.Records = append(d.Records, rec)
		default:
			return nil, fmt.Errorf("mrt: unsupported subtype %d", subtype)
		}
	}
}

func (d *Dump) checkPeerIndexes(rec RIBRecord) error {
	for _, e := range rec.Entries {
		if int(e.PeerIndex) >= len(d.Peers) {
			return fmt.Errorf("mrt: record %d references peer %d of %d", rec.Sequence, e.PeerIndex, len(d.Peers))
		}
	}
	return nil
}

func (rd *Reader) readRecord() (subtype uint16, ts time.Time, body []byte, err error) {
	var hdr [12]byte
	if _, err = io.ReadFull(rd.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = errors.New("mrt: truncated record header")
		}
		return 0, time.Time{}, nil, err
	}
	ts = time.Unix(int64(binary.BigEndian.Uint32(hdr[0:4])), 0).UTC()
	typ := binary.BigEndian.Uint16(hdr[4:6])
	subtype = binary.BigEndian.Uint16(hdr[6:8])
	length := binary.BigEndian.Uint32(hdr[8:12])
	if typ != TypeTableDumpV2 {
		return 0, time.Time{}, nil, fmt.Errorf("mrt: unsupported record type %d", typ)
	}
	const maxRecord = 64 << 20
	if length > maxRecord {
		return 0, time.Time{}, nil, fmt.Errorf("mrt: record length %d exceeds limit", length)
	}
	body = make([]byte, length)
	if _, err = io.ReadFull(rd.r, body); err != nil {
		return 0, time.Time{}, nil, fmt.Errorf("mrt: truncated record body: %w", err)
	}
	return subtype, ts, body, nil
}

func (d *Dump) parsePeerIndex(b []byte) error {
	if len(b) < 8 {
		return errors.New("mrt: peer index table truncated")
	}
	copy(d.CollectorID[:], b[0:4])
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	if len(b) < 6+nameLen+2 {
		return errors.New("mrt: peer index table truncated")
	}
	d.ViewName = string(b[6 : 6+nameLen])
	off := 6 + nameLen
	count := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	for i := 0; i < count; i++ {
		if off >= len(b) {
			return errors.New("mrt: peer entry truncated")
		}
		ptype := b[off]
		off++
		var p Peer
		if off+4 > len(b) {
			return errors.New("mrt: peer entry truncated")
		}
		copy(p.BGPID[:], b[off:off+4])
		off += 4
		addrLen := 4
		if ptype&0x01 != 0 {
			addrLen = 16
		}
		if off+addrLen > len(b) {
			return errors.New("mrt: peer entry truncated")
		}
		if addrLen == 16 {
			p.Addr = netip.AddrFrom16([16]byte(b[off : off+16]))
		} else {
			p.Addr = netip.AddrFrom4([4]byte(b[off : off+4]))
		}
		off += addrLen
		asnLen := 2
		if ptype&0x02 != 0 {
			asnLen = 4
		}
		if off+asnLen > len(b) {
			return errors.New("mrt: peer entry truncated")
		}
		if asnLen == 4 {
			p.ASN = binary.BigEndian.Uint32(b[off:])
		} else {
			p.ASN = uint32(binary.BigEndian.Uint16(b[off:]))
		}
		off += asnLen
		d.Peers = append(d.Peers, p)
	}
	return nil
}

func parseRIB(b []byte, v6 bool) (RIBRecord, error) {
	var rec RIBRecord
	if len(b) < 5 {
		return rec, errors.New("mrt: RIB record truncated")
	}
	rec.Sequence = binary.BigEndian.Uint32(b[0:4])
	bits := int(b[4])
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	if bits > maxBits {
		return rec, fmt.Errorf("mrt: prefix length %d out of range", bits)
	}
	nbytes := (bits + 7) / 8
	if len(b) < 5+nbytes+2 {
		return rec, errors.New("mrt: RIB record truncated")
	}
	var addr netip.Addr
	if v6 {
		var a [16]byte
		copy(a[:], b[5:5+nbytes])
		addr = netip.AddrFrom16(a)
	} else {
		var a [4]byte
		copy(a[:], b[5:5+nbytes])
		addr = netip.AddrFrom4(a)
	}
	p, err := netx.PrefixFrom(addr, bits)
	if err != nil {
		return rec, err
	}
	rec.Prefix = p
	off := 5 + nbytes
	count := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	for i := 0; i < count; i++ {
		if off+8 > len(b) {
			return rec, errors.New("mrt: RIB entry truncated")
		}
		var e RIBEntry
		e.PeerIndex = binary.BigEndian.Uint16(b[off:])
		e.OriginatedTime = time.Unix(int64(binary.BigEndian.Uint32(b[off+2:])), 0).UTC()
		attrLen := int(binary.BigEndian.Uint16(b[off+6:]))
		off += 8
		if off+attrLen > len(b) {
			return rec, errors.New("mrt: RIB entry attributes truncated")
		}
		u, err := wire.DecodeAttributes(b[off : off+attrLen])
		if err != nil {
			return rec, fmt.Errorf("mrt: RIB entry attributes: %w", err)
		}
		e.Path = u.PathASNs()
		off += attrLen
		rec.Entries = append(rec.Entries, e)
	}
	return rec, nil
}
