package mrt

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"manrsmeter/internal/netx"
)

// FuzzReadAll drives the TABLE_DUMP_V2 reader with arbitrary bytes. The
// seed corpus is produced by our own Writer (a valid peer table plus v4
// and v6 RIB records), then degenerate shapes: empty stream, truncated
// header, a header whose declared length runs past the data, and an
// oversized-length claim. `go test` exercises the seeds; the check.sh
// fuzz smoke explores further. The reader must reject malformed input
// with an error — never panic or over-allocate.
func FuzzReadAll(f *testing.F) {
	ts := time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)
	peers := []Peer{
		{BGPID: [4]byte{10, 0, 0, 1}, Addr: netip.MustParseAddr("10.0.0.1"), ASN: 64500},
		{BGPID: [4]byte{10, 0, 0, 2}, Addr: netip.MustParseAddr("2001:db8::2"), ASN: 64501},
	}
	entries := []RIBEntry{
		{PeerIndex: 0, OriginatedTime: ts, Path: []uint32{64500, 64502}},
		{PeerIndex: 1, OriginatedTime: ts, Path: []uint32{64501, 64503, 64502}},
	}

	var full bytes.Buffer
	w := NewWriter(&full, ts)
	if err := w.WritePeerIndexTable([4]byte{192, 0, 2, 255}, "fuzz", peers); err != nil {
		f.Fatal(err)
	}
	if err := w.WriteRIB(netx.MustParsePrefix("192.0.2.0/24"), entries); err != nil {
		f.Fatal(err)
	}
	if err := w.WriteRIB(netx.MustParsePrefix("2001:db8::/32"), entries); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())

	var peerOnly bytes.Buffer
	if err := NewWriter(&peerOnly, ts).WritePeerIndexTable([4]byte{192, 0, 2, 255}, "", nil); err != nil {
		f.Fatal(err)
	}
	f.Add(peerOnly.Bytes())

	f.Add([]byte{})
	f.Add(full.Bytes()[:7])                             // truncated common header
	f.Add(full.Bytes()[:len(full.Bytes())-3])           // truncated final record
	f.Add([]byte{0, 0, 0, 0, 0, 13, 0, 1, 0, 0, 0, 16}) // length claims bytes that never arrive
	f.Add([]byte{0, 0, 0, 0, 0, 13, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			return
		}
		// A successful parse must be internally consistent: every entry
		// references a peer that exists in the table.
		for _, rec := range d.Records {
			for _, e := range rec.Entries {
				if int(e.PeerIndex) >= len(d.Peers) {
					t.Fatalf("record %d references peer %d of %d", rec.Sequence, e.PeerIndex, len(d.Peers))
				}
			}
		}
	})
}
