// Package bgp provides a minimal BGP-4 speaker on top of internal/bgp/wire:
// enough of the RFC 4271 session machinery to establish a peering over a
// net.Conn, exchange UPDATE messages, and maintain a RIB. The measurement
// pipeline uses it to emulate a route collector (RouteViews/RIS style)
// peering with simulated networks; it is not a full routing daemon.
package bgp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
)

// State is the subset of the RFC 4271 §8 FSM states a connected session
// traverses.
type State int32

// Session states, in order of progression.
const (
	StateIdle State = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
	StateClosed
)

// String returns the RFC 4271 state name.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	case StateClosed:
		return "Closed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Config configures one side of a session.
type Config struct {
	// ASN is the local 4-octet AS number.
	ASN uint32
	// BGPID is the local BGP identifier.
	BGPID [4]byte
	// HoldTime is advertised in OPEN; zero means 90 seconds. Values
	// under one second advertise a hold time of zero, which disables
	// the hold timer and keepalives (RFC 4271 permits zero).
	HoldTime time.Duration
	// WriteTimeout bounds each message write so a peer that stops
	// reading cannot block the sender forever; zero means 10 seconds.
	WriteTimeout time.Duration
}

// Session is an established (or establishing) BGP session over a conn.
// Create with Establish; the caller owns conn's lifetime beyond Close.
type Session struct {
	conn   net.Conn
	config Config

	// holdTime is the RFC 4271 §4.2 negotiated hold time: the smaller
	// of the two advertised values, zero meaning "no hold timer".
	holdTime     time.Duration
	writeTimeout time.Duration

	// wmu serializes message writes so the keepalive pump and update
	// sends cannot interleave bytes on the wire.
	wmu sync.Mutex

	mu      sync.Mutex
	state   State
	peerASN uint32
	peerID  [4]byte
	closed  bool
	lastErr error
}

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("bgp: session closed")

// ErrHoldTimerExpired is returned by Recv when the negotiated hold time
// passes without any message from the peer; the session is closed with
// a Hold Timer Expired NOTIFICATION (RFC 4271 §6.5) before returning.
var ErrHoldTimerExpired = errors.New("bgp: hold timer expired")

// Establish runs the OPEN/KEEPALIVE handshake on conn and returns an
// Established session. Both sides call Establish; the exchange is
// symmetric. The handshake is bounded by timeout (zero means 10s).
func Establish(conn net.Conn, cfg Config, timeout time.Duration) (*Session, error) {
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	hold := uint16(90)
	if cfg.HoldTime > 0 {
		hold = uint16(cfg.HoldTime / time.Second)
	}
	wt := cfg.WriteTimeout
	if wt == 0 {
		wt = 10 * time.Second
	}
	s := &Session{conn: conn, config: cfg, state: StateIdle, writeTimeout: wt}

	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, fmt.Errorf("bgp: set handshake deadline: %w", err)
	}

	// Writes run on their own goroutine so the symmetric handshake also
	// works over unbuffered transports (net.Pipe): both ends send their
	// OPEN while concurrently reading the peer's. abort is closed when
	// Establish returns without validating the peer's OPEN, so the writer
	// never outlives a failed handshake.
	openValidated := make(chan struct{})
	abort := make(chan struct{})
	validated := false
	defer func() {
		if !validated {
			close(abort)
		}
	}()
	writeDone := make(chan error, 1)
	go func() {
		if err := wire.WriteMessage(conn, wire.NewOpen(cfg.ASN, hold, cfg.BGPID)); err != nil {
			writeDone <- fmt.Errorf("bgp: send OPEN: %w", err)
			return
		}
		select {
		case <-openValidated:
		case <-abort:
			writeDone <- fmt.Errorf("bgp: handshake aborted before OPEN validation")
			return
		}
		if err := wire.WriteMessage(conn, &wire.Keepalive{}); err != nil {
			writeDone <- fmt.Errorf("bgp: send KEEPALIVE: %w", err)
			return
		}
		writeDone <- nil
	}()
	s.state = StateOpenSent

	msg, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("bgp: read OPEN: %w", err)
	}
	open, ok := msg.(*wire.Open)
	if !ok {
		return nil, fmt.Errorf("bgp: expected OPEN, got type %d", msg.Type())
	}
	if open.Version != 4 {
		_ = wire.WriteMessage(conn, &wire.Notification{Code: 2, Subcode: 1}) // unsupported version
		return nil, fmt.Errorf("bgp: peer version %d unsupported", open.Version)
	}
	s.peerASN = open.FourOctetAS()
	s.peerID = open.BGPID
	// RFC 4271 §4.2: the effective hold time is the smaller of the two
	// advertised values; zero from either side disables the timer.
	negotiated := hold
	if open.HoldTime < negotiated {
		negotiated = open.HoldTime
	}
	s.holdTime = time.Duration(negotiated) * time.Second
	validated = true
	close(openValidated)
	s.state = StateOpenConfirm

	msg, err = wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("bgp: read KEEPALIVE: %w", err)
	}
	if err := <-writeDone; err != nil {
		return nil, err
	}
	if _, ok := msg.(*wire.Keepalive); !ok {
		if n, isNotif := msg.(*wire.Notification); isNotif {
			return nil, n
		}
		return nil, fmt.Errorf("bgp: expected KEEPALIVE, got type %d", msg.Type())
	}
	s.state = StateEstablished

	// Clear the handshake deadline; callers manage I/O pacing afterwards.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, fmt.Errorf("bgp: clear deadline: %w", err)
	}
	return s, nil
}

// State returns the session state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// PeerASN returns the peer's 4-octet ASN (valid once established).
func (s *Session) PeerASN() uint32 { return s.peerASN }

// PeerID returns the peer's BGP identifier.
func (s *Session) PeerID() [4]byte { return s.peerID }

// HoldTime returns the negotiated hold time; zero means the hold timer
// is disabled.
func (s *Session) HoldTime() time.Duration { return s.holdTime }

// writeMsg serializes a message write under the write lock with the
// session's write deadline applied.
func (s *Session) writeMsg(m wire.Message) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.writeTimeout > 0 {
		if err := s.conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)); err != nil {
			return err
		}
	}
	return wire.WriteMessage(s.conn, m)
}

// SendUpdate transmits an UPDATE message.
func (s *Session) SendUpdate(u *wire.Update) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.mu.Unlock()
	return s.writeMsg(u)
}

// SendKeepalive transmits a KEEPALIVE.
func (s *Session) SendKeepalive() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.mu.Unlock()
	return s.writeMsg(&wire.Keepalive{})
}

// Recv blocks for the next UPDATE, transparently absorbing keepalives.
// It returns the peer's notification as an error if one arrives, and
// io.EOF-wrapping errors when the transport closes. With a nonzero
// negotiated hold time, a peer silent past it is torn down with a Hold
// Timer Expired NOTIFICATION and Recv returns ErrHoldTimerExpired.
func (s *Session) Recv() (*wire.Update, error) {
	for {
		if s.holdTime > 0 {
			if err := s.conn.SetReadDeadline(time.Now().Add(s.holdTime)); err != nil {
				return nil, err
			}
		}
		msg, err := wire.ReadMessage(s.conn)
		if err != nil {
			var ne net.Error
			if s.holdTime > 0 && errors.As(err, &ne) && ne.Timeout() {
				// RFC 4271 §6.5: code 4 = Hold Timer Expired.
				_ = s.closeWithNotification(4, 0)
				return nil, ErrHoldTimerExpired
			}
			return nil, err
		}
		switch m := msg.(type) {
		case *wire.Update:
			return m, nil
		case *wire.Keepalive:
			continue
		case *wire.Notification:
			s.mu.Lock()
			s.state = StateClosed
			s.mu.Unlock()
			return nil, m
		default:
			return nil, fmt.Errorf("bgp: unexpected message type %d in established state", msg.Type())
		}
	}
}

// Close sends a Cease notification (best effort) and closes the conn.
func (s *Session) Close() error {
	return s.closeWithNotification(6, 0) // Cease
}

// closeWithNotification transitions to Closed, sends a best-effort
// NOTIFICATION with the given code/subcode, and closes the transport.
// Subsequent calls are no-ops.
func (s *Session) closeWithNotification(code, subcode byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.state = StateClosed
	s.mu.Unlock()
	// Bound the write so a peer that stopped reading cannot block the
	// teardown.
	s.wmu.Lock()
	_ = s.conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
	_ = wire.WriteMessage(s.conn, &wire.Notification{Code: code, Subcode: subcode})
	s.wmu.Unlock()
	return s.conn.Close()
}

// Route is one RIB entry: a prefix with the path information needed by
// the measurement pipeline.
type Route struct {
	Prefix  netx.Prefix
	Path    []uint32
	Origin  uint32 // origin AS (last ASN of the path)
	PeerASN uint32 // the peer this route was learned from
}

// RIB is an Adj-RIB-In: the routes received from peers, keyed by prefix;
// multiple peers may contribute routes for the same prefix. RIB is safe
// for concurrent use.
type RIB struct {
	mu     sync.RWMutex
	routes map[netx.Prefix][]Route
	n      int
}

// NewRIB returns an empty RIB.
func NewRIB() *RIB {
	return &RIB{routes: make(map[netx.Prefix][]Route)}
}

// Apply ingests an UPDATE from peerASN: withdrawals remove that peer's
// routes for the withdrawn prefixes, announcements replace them.
func (r *RIB) Apply(peerASN uint32, u *wire.Update) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range u.Withdrawn {
		r.removeLocked(peerASN, p)
	}
	for _, p := range u.MPUnreach {
		r.removeLocked(peerASN, p)
	}
	path := u.PathASNs()
	origin, _ := u.OriginAS()
	add := func(p netx.Prefix) {
		r.removeLocked(peerASN, p)
		r.routes[p] = append(r.routes[p], Route{
			Prefix:  p,
			Path:    append([]uint32(nil), path...),
			Origin:  origin,
			PeerASN: peerASN,
		})
		r.n++
	}
	for _, p := range u.NLRI {
		add(p)
	}
	for _, p := range u.MPReach {
		add(p)
	}
}

func (r *RIB) removeLocked(peerASN uint32, p netx.Prefix) {
	rs := r.routes[p]
	for i := 0; i < len(rs); {
		if rs[i].PeerASN == peerASN {
			rs = append(rs[:i], rs[i+1:]...)
			r.n--
		} else {
			i++
		}
	}
	if len(rs) == 0 {
		delete(r.routes, p)
	} else {
		r.routes[p] = rs
	}
}

// RemovePeer withdraws every route learned from peerASN — the RIB-side
// teardown when a peer's session dies — and reports how many routes
// left the table.
func (r *RIB) RemovePeer(peerASN uint32) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	before := r.n
	for p, rs := range r.routes {
		keep := rs[:0]
		for _, rt := range rs {
			if rt.PeerASN == peerASN {
				r.n--
			} else {
				keep = append(keep, rt)
			}
		}
		if len(keep) == 0 {
			delete(r.routes, p)
		} else {
			r.routes[p] = keep
		}
	}
	return before - r.n
}

// Lookup returns the routes held for exactly prefix p.
func (r *RIB) Lookup(p netx.Prefix) []Route {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Route(nil), r.routes[p]...)
}

// Len returns the total number of routes.
func (r *RIB) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

// Walk visits every route. The callback must not mutate the RIB.
func (r *RIB) Walk(fn func(Route) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, rs := range r.routes {
		for _, rt := range rs {
			if !fn(rt) {
				return
			}
		}
	}
}

// StartKeepalives launches a goroutine sending KEEPALIVE every interval.
// A nonpositive interval uses one third of the negotiated hold time (the
// RFC 4271 recommendation), or 30 seconds when the hold timer is
// disabled. The returned stop function terminates the pump; it is also
// safe to call after Close.
func (s *Session) StartKeepalives(interval time.Duration) (stop func()) {
	if interval <= 0 {
		if s.holdTime > 0 {
			interval = s.holdTime / 3
		} else {
			interval = 30 * time.Second
		}
	}
	done := make(chan struct{})
	var once sync.Once
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return func() {}
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := s.SendKeepalive(); err != nil {
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
