package manrsmeter

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"manrsmeter/internal/obsv"
)

// TestRunReportByteIdentical is the determinism golden test: the full
// report must be byte-identical across repeated runs and across worker
// counts, because every parallel stage merges into a total order.
func TestRunReportByteIdentical(t *testing.T) {
	world, err := GenerateWorld(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		var buf bytes.Buffer
		err := RunReport(&buf, world, ReportOptions{StabilityWeeks: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render(1)
	if first == "" {
		t.Fatal("empty report")
	}
	if again := render(1); again != first {
		t.Error("two Workers=1 runs differ")
	}
	if wide := render(8); wide != first {
		t.Error("Workers=8 report differs from Workers=1")
	}
}

// TestConcurrentPipelinesSharedWorld runs two pipelines and two
// concurrent RunReport calls over one World — the immutable-snapshot
// contract under -race, plus output equality.
func TestConcurrentPipelinesSharedWorld(t *testing.T) {
	world, err := GenerateWorld(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	pipes := make([]*Pipeline, 2)
	outs := make([]bytes.Buffer, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pipe, err := NewPipelineWith(world, PipelineOptions{Workers: 2})
			if err != nil {
				t.Errorf("pipeline %d: %v", i, err)
				return
			}
			pipes[i] = pipe
			opts := ReportOptions{StabilityWeeks: 3, Workers: 2}
			if err := RunReportWithPipeline(&outs[i], pipe, opts); err != nil {
				t.Errorf("report %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if outs[0].String() != outs[1].String() {
		t.Error("concurrent reports over one world differ")
	}
	if !strings.Contains(outs[0].String(), "Finding 8.7") {
		t.Error("stability section missing from concurrent report")
	}
}

// TestRunReportTracerDeterministic is the observability acceptance
// test: attaching a span tracer must not perturb the report — bytes
// stay identical across worker counts — while the tracer itself
// records the run hierarchy (a report root with one span per section).
func TestRunReportTracerDeterministic(t *testing.T) {
	world, err := GenerateWorld(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) (string, *obsv.Tracer) {
		tracer := obsv.NewTracer()
		var buf bytes.Buffer
		opts := ReportOptions{StabilityWeeks: 3, Workers: workers, Tracer: tracer}
		if err := RunReport(&buf, world, opts); err != nil {
			t.Fatal(err)
		}
		return buf.String(), tracer
	}
	narrow, _ := render(1)
	wide, tracer := render(8)
	if narrow != wide {
		t.Error("report with Tracer differs between Workers=1 and Workers=8")
	}
	var plain bytes.Buffer
	if err := RunReport(&plain, world, ReportOptions{StabilityWeeks: 3, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if plain.String() != narrow {
		t.Error("attaching a Tracer changed the report bytes")
	}

	events := tracer.Events()
	var roots, sections int
	for _, ev := range events {
		switch ev.Name {
		case "report":
			roots++
		case "section":
			sections++
			if ev.Parent == 0 {
				t.Errorf("section span %q has no parent", ev.Attr("name"))
			}
			if s := ev.Attr("status"); s != "ok" {
				t.Errorf("section %q status = %q, want ok", ev.Attr("name"), s)
			}
		}
	}
	if roots != 1 {
		t.Errorf("report root spans = %d, want 1", roots)
	}
	if sections == 0 {
		t.Error("no section spans recorded")
	}
}

// TestRunReportTrace checks the per-section wall-time tracing output.
func TestRunReportTrace(t *testing.T) {
	world, err := GenerateWorld(smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	var report, trace bytes.Buffer
	opts := ReportOptions{SkipStability: true, SkipExtensions: true, Trace: &trace}
	if err := RunReport(&report, world, opts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(trace.String()), "\n")
	if len(lines) != 17 {
		t.Fatalf("trace lines = %d, want one per section (17):\n%s", len(lines), trace.String())
	}
	for _, name := range []string{"Fig2Growth", "Stability", "RouteLeaks"} {
		if !strings.Contains(trace.String(), name) {
			t.Errorf("trace missing section %s", name)
		}
	}
	if strings.Contains(report.String(), "trace:") {
		t.Error("trace lines leaked into the report writer")
	}
}
