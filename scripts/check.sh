#!/bin/sh
# Pre-merge check: everything a change must pass before it lands.
# Run from the repository root (or via `make check`).
#
#   gofmt  — formatting gate (fails listing unformatted files)
#   vet    — static analysis
#   build  — every package and command compiles
#   race   — full test suite under the race detector (includes the
#            chaos suites driving each daemon through injected faults),
#            then an explicit pass over the failure-semantics gates:
#            the section-timeout chaos test (every report section
#            stalled past its watchdog) and the parallel-pool
#            goroutine-leak test
#   bench  — single-iteration smoke of the dataset-build benchmarks,
#            so the parallel build paths stay exercised pre-merge
#   fuzz   — short smoke of the BGP wire-format and MRT-reader fuzzers,
#            so decoder regressions on malformed input surface before
#            merge
set -eu

FUZZTIME="${FUZZTIME:-5s}"

echo "==> gofmt -l ."
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> section-timeout chaos + goroutine-leak gates (-race)"
go test -race -count=1 -run '^TestRunReportSectionTimeoutChaos$|^TestRunReportCancelDrains$' .
go test -race -count=1 -run '^TestForEachCtxNoGoroutineLeak$' ./internal/parallel

echo "==> bench smoke (1 iteration per dataset-build bench)"
go test -run '^$' -bench 'BuildDataset|DatasetBuild' -benchtime 1x .

echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime "$FUZZTIME" ./internal/bgp/wire
go test -run '^$' -fuzz '^FuzzDecodeAttributes$' -fuzztime "$FUZZTIME" ./internal/bgp/wire
go test -run '^$' -fuzz '^FuzzReadAll$' -fuzztime "$FUZZTIME" ./internal/bgp/mrt

echo "==> all checks passed"
