#!/bin/sh
# Pre-merge check: everything a change must pass before it lands.
# Run from the repository root (or via `make check`).
#
#   gofmt  — formatting gate (fails listing unformatted files)
#   vet    — static analysis
#   build  — every package and command compiles
#   race   — full test suite under the race detector (includes the
#            chaos suites driving each daemon through injected faults),
#            then an explicit pass over the failure-semantics gates:
#            the section-timeout chaos test (every report section
#            stalled past its watchdog), the parallel-pool
#            goroutine-leak test, and the adversarial scenario suite
#            (relying-party-failure chaos with concurrent baseline
#            readers, byte-determinism across worker counts)
#   bench  — single-iteration smoke of the headline benchmarks (dataset
#            build, propagation, full report, serving hot path, snapshot
#            persist/load), emitting one BENCH_<name>.json per result in
#            the repo root so perf regressions can be diffed across
#            commits
#   memory — internet-scale gate: generate the -scale large world (~75k
#            ASes, ~1M prefixes) and run its dataset-build/propagation
#            benches under GOMEMLIMIT=4GiB; fails on OOM or on a >20%
#            bytes/op regression against the committed
#            BENCH_DatasetBuild_large.json baseline, then prints
#            bytes/op and allocs/op deltas vs HEAD for every emitted
#            BENCH_*.json
#   fuzz   — short smoke of the BGP wire-format, MRT-reader, durable
#            archive-decoder, VRP-CSV, and scenario-codec fuzzers, so
#            decoder regressions on malformed input surface before
#            merge
#   admin  — end-to-end smoke of the observability endpoint: start a
#            collector with -admin, curl /healthz and /metrics, and
#            assert the expected metric families are exposed
#   manrsd — end-to-end smoke of the query daemon: start it on a small
#            synthetic world, query a conformance lookup twice (200
#            then 304 via the captured ETag), query the adversarial
#            scenario route /v1/scenario/rp-failure and assert it
#            answers 200 with "degraded": true (graceful degradation,
#            never a 5xx), assert the coalesce and cache-hit series
#            appear on /metrics, and SIGTERM-drain cleanly
#   crash  — crash-recovery smoke: run manrsd with -data-dir until it
#            archives a snapshot, SIGKILL it, restart over the same
#            directory, and assert the daemon warm-starts from the
#            archive (first query 200, durable_load_total >= 1) before
#            draining cleanly
#   loadgen — workload smoke: boot manrsd on the small world with
#            -access-log-sample 1, drive a seeded reproducible burst
#            through cmd/loadgen (zero 5xx allowed, 503 shed excluded;
#            p99 under a generous ceiling), emit BENCH_ServeLatency.json
#            (p50/p99 ns, qps, shed/error/304 rates) with deltas vs the
#            committed baseline, and assert the first trace ID injected
#            by loadgen appears in BOTH the daemon's access log and the
#            /debug/trace span tree — end-to-end request correlation
#   cluster — distributed serve tier smoke: boot 2 replicas on the seed
#            world, boot a 3rd with -peers so it catches up over wire
#            replication (asserted from its log) instead of rebuilding,
#            front all 3 with manrs-gw, assert ETag coherence (the
#            gateway's ETag matches a direct replica query; 304
#            revalidation works through the gateway), drive a seeded
#            loadgen burst through the gateway with -max-5xx 0, emit
#            BENCH_ClusterLatency.json with deltas vs the committed
#            baseline, then SIGTERM one replica and assert it drains
#            cleanly, the ring converges on the survivors, and the
#            gateway still answers 200
set -eu

FUZZTIME="${FUZZTIME:-5s}"

TMPDIR_SMOKE="$(mktemp -d)"
cleanup() {
    [ -n "${COLLECTOR_PID:-}" ] && kill "$COLLECTOR_PID" 2>/dev/null || true
    [ -n "${MANRSD_PID:-}" ] && kill "$MANRSD_PID" 2>/dev/null || true
    [ -n "${GW_PID:-}" ] && kill "$GW_PID" 2>/dev/null || true
    [ -n "${R1_PID:-}" ] && kill "$R1_PID" 2>/dev/null || true
    [ -n "${R2_PID:-}" ] && kill "$R2_PID" 2>/dev/null || true
    [ -n "${R3_PID:-}" ] && kill "$R3_PID" 2>/dev/null || true
    rm -rf "$TMPDIR_SMOKE"
}
trap cleanup EXIT INT TERM

echo "==> gofmt -l ."
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...
# The observability layer is new and stdlib-only; vet it explicitly so
# a failure names the package even if the ./... pass is ever narrowed.
go vet ./internal/obsv

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> section-timeout chaos + goroutine-leak gates (-race)"
go test -race -count=1 -run '^TestRunReportSectionTimeoutChaos$|^TestRunReportCancelDrains$' .
go test -race -count=1 -run '^TestForEachCtxNoGoroutineLeak$' ./internal/parallel

echo "==> adversarial scenario gates (-race): rp-failure chaos + byte determinism"
go test -race -count=1 ./internal/scenario

# emit_bench OUTPUT-FILE: turn `go test -bench` result lines into one
# BENCH_<name>.json each in the repo root. The `$4 == "ns/op"` guard
# skips the name-only lines a skipped sub-benchmark prints (e.g. the
# MANRS_LARGE-gated benches), which would otherwise emit garbage JSON.
BENCH_COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
BENCH_DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
emit_bench() {
    awk -v date="$BENCH_DATE" -v commit="$BENCH_COMMIT" -v gover="$(go env GOVERSION)" '
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)           # strip the GOMAXPROCS suffix
    ns = $3; bytes = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    file = name
    sub(/^Benchmark/, "", file)
    gsub(/[^A-Za-z0-9_]/, "_", file)    # sub-bench slashes, workers=N
    out = "BENCH_" file ".json"
    printf "{\n  \"name\": \"%s\",\n  \"ns_per_op\": %s,\n  \"bytes_per_op\": %s,\n  \"allocs_per_op\": %s,\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n  \"go\": \"%s\"\n}\n", \
        name, ns, bytes, allocs, date, commit, gover > out
    close(out)
    emitted++
}
END {
    if (emitted == 0) { print "bench emit: no benchmark result lines parsed" > "/dev/stderr"; exit 1 }
    printf "emitted %d BENCH_*.json files\n", emitted
}
' "$1"
}

# bench_field FILE KEY: extract an integer metric from a BENCH json.
bench_field() {
    sed -n 's/.*"'"$2"'": \([0-9][0-9]*\).*/\1/p' "$1"
}

echo "==> bench smoke (1 iteration per headline bench) + BENCH_*.json emit"
go test -run '^$' -benchtime 1x -benchmem \
    -bench '^(BenchmarkDatasetBuild|BenchmarkBuildDatasetParallel|BenchmarkPropagation|BenchmarkFullReport|BenchmarkServeConformance|BenchmarkSnapshotPersist|BenchmarkSnapshotLoad)$' \
    . | tee "$TMPDIR_SMOKE/bench.out"
emit_bench "$TMPDIR_SMOKE/bench.out"
for f in BENCH_DatasetBuild_seed.json BENCH_SnapshotPersist.json BENCH_SnapshotLoad.json; do
    [ -f "$f" ] || { echo "bench emit: $f missing" >&2; exit 1; }
done

echo "==> internet-scale memory gate (GOMEMLIMIT=4GiB, ~75k ASes / ~1M prefixes)"
# Build the -scale large world and its full dataset inside a 4 GiB soft
# memory limit: an OOM kill or runaway GC thrash fails the gate, so the
# compact arena/CSR layout cannot silently regress back to per-prefix
# allocation. Runs serially (workers=1) — the worst case for peak heap.
GOMEMLIMIT=4GiB MANRS_LARGE=1 go test -run '^$' -benchtime 1x -benchmem -timeout 45m \
    -bench '^(BenchmarkDatasetBuild|BenchmarkPropagation)$/^large$' \
    . | tee "$TMPDIR_SMOKE/bench-large.out"
emit_bench "$TMPDIR_SMOKE/bench-large.out"
[ -f BENCH_DatasetBuild_large.json ] || { echo "memory gate: BENCH_DatasetBuild_large.json missing" >&2; exit 1; }
BASE_BYTES="$(git show HEAD:BENCH_DatasetBuild_large.json 2>/dev/null | sed -n 's/.*"bytes_per_op": \([0-9][0-9]*\).*/\1/p' || true)"
NEW_BYTES="$(bench_field BENCH_DatasetBuild_large.json bytes_per_op)"
if [ -n "$BASE_BYTES" ] && [ -n "$NEW_BYTES" ]; then
    BYTES_LIMIT=$((BASE_BYTES + BASE_BYTES / 5))
    if [ "$NEW_BYTES" -gt "$BYTES_LIMIT" ]; then
        echo "memory gate: large dataset build allocates $NEW_BYTES bytes/op, >20% over committed baseline $BASE_BYTES" >&2
        exit 1
    fi
    echo "memory gate: bytes/op $NEW_BYTES vs baseline $BASE_BYTES (limit $BYTES_LIMIT) — ok"
else
    echo "memory gate: no committed baseline for BENCH_DatasetBuild_large.json; this run records the first measurement"
fi

echo "==> internet-scale serve smoke (manrsd -scale large under GOMEMLIMIT=4GiB)"
# The large world must not just build — it must answer conformance
# queries through the real daemon inside the same memory budget. The
# warm build runs serially for minutes; poll patiently.
go build -o "$TMPDIR_SMOKE/manrsd" ./cmd/manrsd
GOMEMLIMIT=4GiB "$TMPDIR_SMOKE/manrsd" -scale large -listen 127.0.0.1:0 \
    >"$TMPDIR_SMOKE/manrsd-large.log" 2>&1 &
MANRSD_PID=$!
SERVE_ADDR=""
for _ in $(seq 1 1800); do
    SERVE_ADDR="$(sed -n 's|.*serving conformance queries on http://||p' "$TMPDIR_SMOKE/manrsd-large.log")"
    [ -n "$SERVE_ADDR" ] && break
    kill -0 "$MANRSD_PID" 2>/dev/null || {
        echo "large serve smoke: daemon exited early (OOM under GOMEMLIMIT?):" >&2
        cat "$TMPDIR_SMOKE/manrsd-large.log" >&2
        exit 1
    }
    sleep 1
done
if [ -z "$SERVE_ADDR" ]; then
    echo "large serve smoke: daemon never started serving" >&2
    cat "$TMPDIR_SMOKE/manrsd-large.log" >&2
    exit 1
fi
LARGE_CODE="$(curl -s -o "$TMPDIR_SMOKE/large-conf.json" -w '%{http_code}' "http://$SERVE_ADDR/v1/as/100/conformance")"
if [ "$LARGE_CODE" != 200 ]; then
    echo "large serve smoke: conformance lookup returned $LARGE_CODE, want 200" >&2
    cat "$TMPDIR_SMOKE/large-conf.json" >&2
    exit 1
fi
grep -q '"action4"' "$TMPDIR_SMOKE/large-conf.json" || {
    echo "large serve smoke: conformance body missing action4 verdict:" >&2
    cat "$TMPDIR_SMOKE/large-conf.json" >&2
    exit 1
}
kill -TERM "$MANRSD_PID"
wait "$MANRSD_PID" || true
MANRSD_PID=""
echo "large serve smoke: conformance query answered from the ~75k-AS world"

echo "==> bench deltas vs HEAD (bytes/op, allocs/op)"
for f in BENCH_*.json; do
    BASE_B="$(git show HEAD:"$f" 2>/dev/null | sed -n 's/.*"bytes_per_op": \([0-9][0-9]*\).*/\1/p' || true)"
    BASE_A="$(git show HEAD:"$f" 2>/dev/null | sed -n 's/.*"allocs_per_op": \([0-9][0-9]*\).*/\1/p' || true)"
    NEW_B="$(bench_field "$f" bytes_per_op)"
    NEW_A="$(bench_field "$f" allocs_per_op)"
    if [ -z "$BASE_B" ] || [ -z "$BASE_A" ] || [ -z "$NEW_B" ] || [ -z "$NEW_A" ]; then
        echo "  $f: no committed baseline"
        continue
    fi
    printf '  %s: bytes/op %s -> %s (%+d), allocs/op %s -> %s (%+d)\n' \
        "$f" "$BASE_B" "$NEW_B" "$((NEW_B - BASE_B))" "$BASE_A" "$NEW_A" "$((NEW_A - BASE_A))"
done

echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime "$FUZZTIME" ./internal/bgp/wire
go test -run '^$' -fuzz '^FuzzDecodeAttributes$' -fuzztime "$FUZZTIME" ./internal/bgp/wire
go test -run '^$' -fuzz '^FuzzReadAll$' -fuzztime "$FUZZTIME" ./internal/bgp/mrt
go test -run '^$' -fuzz '^FuzzDecodeArchive$' -fuzztime "$FUZZTIME" ./internal/durable
go test -run '^$' -fuzz '^FuzzReadVRPCSV$' -fuzztime "$FUZZTIME" ./internal/rpki
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime "$FUZZTIME" ./internal/scenario

echo "==> admin endpoint smoke (collector -admin)"
go build -o "$TMPDIR_SMOKE/collector" ./cmd/collector
"$TMPDIR_SMOKE/collector" -listen 127.0.0.1:0 -admin 127.0.0.1:0 \
    -out "$TMPDIR_SMOKE/rib.mrt" >"$TMPDIR_SMOKE/collector.log" 2>&1 &
COLLECTOR_PID=$!
ADMIN_ADDR=""
for _ in $(seq 1 50); do
    ADMIN_ADDR="$(sed -n 's|.*admin endpoint on http://||p' "$TMPDIR_SMOKE/collector.log")"
    [ -n "$ADMIN_ADDR" ] && break
    kill -0 "$COLLECTOR_PID" 2>/dev/null || {
        echo "admin smoke: collector exited early:" >&2
        cat "$TMPDIR_SMOKE/collector.log" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$ADMIN_ADDR" ]; then
    echo "admin smoke: collector never logged its admin address" >&2
    cat "$TMPDIR_SMOKE/collector.log" >&2
    exit 1
fi
HEALTH_CODE="$(curl -s -o "$TMPDIR_SMOKE/healthz" -w '%{http_code}' "http://$ADMIN_ADDR/healthz")"
if [ "$HEALTH_CODE" != 200 ]; then
    echo "admin smoke: GET /healthz returned $HEALTH_CODE, want 200" >&2
    cat "$TMPDIR_SMOKE/healthz" >&2
    exit 1
fi
grep -q '^ok$' "$TMPDIR_SMOKE/healthz" || {
    echo "admin smoke: /healthz body missing ok verdict:" >&2
    cat "$TMPDIR_SMOKE/healthz" >&2
    exit 1
}
METRICS_CODE="$(curl -s -o "$TMPDIR_SMOKE/metrics" -w '%{http_code}' "http://$ADMIN_ADDR/metrics")"
if [ "$METRICS_CODE" != 200 ]; then
    echo "admin smoke: GET /metrics returned $METRICS_CODE, want 200" >&2
    exit 1
fi
for metric in collector_peers_active collector_routes_received_total \
    collector_mrt_bytes_written_total netx_server_conns_total; do
    grep -q "^$metric" "$TMPDIR_SMOKE/metrics" || {
        echo "admin smoke: /metrics missing $metric" >&2
        grep '^# TYPE' "$TMPDIR_SMOKE/metrics" >&2 || true
        exit 1
    }
done
kill "$COLLECTOR_PID" 2>/dev/null || true
wait "$COLLECTOR_PID" 2>/dev/null || true
COLLECTOR_PID=""

echo "==> query daemon smoke (manrsd)"
go build -o "$TMPDIR_SMOKE/manrsd" ./cmd/manrsd
"$TMPDIR_SMOKE/manrsd" -scale small -listen 127.0.0.1:0 -admin 127.0.0.1:0 \
    >"$TMPDIR_SMOKE/manrsd.log" 2>&1 &
MANRSD_PID=$!
SERVE_ADDR=""
for _ in $(seq 1 300); do
    SERVE_ADDR="$(sed -n 's|.*serving conformance queries on http://||p' "$TMPDIR_SMOKE/manrsd.log")"
    [ -n "$SERVE_ADDR" ] && break
    kill -0 "$MANRSD_PID" 2>/dev/null || {
        echo "manrsd smoke: daemon exited early:" >&2
        cat "$TMPDIR_SMOKE/manrsd.log" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$SERVE_ADDR" ]; then
    echo "manrsd smoke: daemon never logged its serving address" >&2
    cat "$TMPDIR_SMOKE/manrsd.log" >&2
    exit 1
fi
MANRSD_ADMIN="$(sed -n 's|.*admin endpoint on http://||p' "$TMPDIR_SMOKE/manrsd.log")"
if [ -z "$MANRSD_ADMIN" ]; then
    echo "manrsd smoke: daemon never logged its admin address" >&2
    cat "$TMPDIR_SMOKE/manrsd.log" >&2
    exit 1
fi
# First conformance lookup: 200 with a strong ETag.
CONF_CODE="$(curl -s -D "$TMPDIR_SMOKE/conf.hdr" -o "$TMPDIR_SMOKE/conf.json" \
    -w '%{http_code}' "http://$SERVE_ADDR/v1/as/100/conformance")"
if [ "$CONF_CODE" != 200 ]; then
    echo "manrsd smoke: conformance lookup returned $CONF_CODE, want 200" >&2
    cat "$TMPDIR_SMOKE/conf.json" >&2
    exit 1
fi
grep -q '"action4"' "$TMPDIR_SMOKE/conf.json" || {
    echo "manrsd smoke: conformance body missing action4 verdict:" >&2
    cat "$TMPDIR_SMOKE/conf.json" >&2
    exit 1
}
ETAG="$(tr -d '\r' <"$TMPDIR_SMOKE/conf.hdr" | sed -n 's/^[Ee][Tt]ag: //p')"
if [ -z "$ETAG" ]; then
    echo "manrsd smoke: 200 response carried no ETag" >&2
    cat "$TMPDIR_SMOKE/conf.hdr" >&2
    exit 1
fi
# Second lookup revalidates: 304 via If-None-Match.
REVAL_CODE="$(curl -s -o /dev/null -w '%{http_code}' \
    -H "If-None-Match: $ETAG" "http://$SERVE_ADDR/v1/as/100/conformance")"
if [ "$REVAL_CODE" != 304 ]; then
    echo "manrsd smoke: If-None-Match revalidation returned $REVAL_CODE, want 304" >&2
    exit 1
fi
# Adversarial scenario route: a degraded ecosystem is a successful
# answer. Failing the RIPE relying party must come back as 200 with
# the degraded-health field set — a 5xx here means the daemon fell
# over instead of degrading.
SCEN_CODE="$(curl -s -o "$TMPDIR_SMOKE/scenario.json" -w '%{http_code}' \
    "http://$SERVE_ADDR/v1/scenario/rp-failure")"
if [ "$SCEN_CODE" != 200 ]; then
    echo "manrsd smoke: /v1/scenario/rp-failure returned $SCEN_CODE, want 200 (degradation must not 5xx)" >&2
    cat "$TMPDIR_SMOKE/scenario.json" >&2
    exit 1
fi
grep -q '"degraded": true' "$TMPDIR_SMOKE/scenario.json" || {
    echo "manrsd smoke: scenario response missing degraded-health field:" >&2
    cat "$TMPDIR_SMOKE/scenario.json" >&2
    exit 1
}
grep -q '"invalid_to_valid_flips": 0' "$TMPDIR_SMOKE/scenario.json" || {
    echo "manrsd smoke: RP failure flipped Invalid to Valid (downgrade invariant violated):" >&2
    cat "$TMPDIR_SMOKE/scenario.json" >&2
    exit 1
}
# The serving metrics must be exposed on the admin endpoint.
curl -s -o "$TMPDIR_SMOKE/manrsd.metrics" "http://$MANRSD_ADMIN/metrics"
for metric in serve_snapshot_builds_total serve_snapshot_coalesced_total \
    serve_cache_hits_total serve_not_modified_total serve_requests_total; do
    grep -q "^$metric" "$TMPDIR_SMOKE/manrsd.metrics" || {
        echo "manrsd smoke: /metrics missing $metric" >&2
        grep '^# TYPE serve' "$TMPDIR_SMOKE/manrsd.metrics" >&2 || true
        exit 1
    }
done
CACHE_HITS="$(sed -n 's/^serve_cache_hits_total //p' "$TMPDIR_SMOKE/manrsd.metrics")"
if [ "${CACHE_HITS:-0}" -lt 1 ]; then
    echo "manrsd smoke: serve_cache_hits_total = ${CACHE_HITS:-absent}, want >= 1" >&2
    exit 1
fi
# SIGTERM must drain cleanly.
kill -TERM "$MANRSD_PID"
MANRSD_STATUS=0
wait "$MANRSD_PID" || MANRSD_STATUS=$?
MANRSD_PID=""
if [ "$MANRSD_STATUS" != 0 ]; then
    echo "manrsd smoke: daemon exited $MANRSD_STATUS on SIGTERM" >&2
    cat "$TMPDIR_SMOKE/manrsd.log" >&2
    exit 1
fi
grep -q 'drained cleanly' "$TMPDIR_SMOKE/manrsd.log" || {
    echo "manrsd smoke: no clean-drain log line:" >&2
    cat "$TMPDIR_SMOKE/manrsd.log" >&2
    exit 1
}

echo "==> crash recovery smoke (manrsd -data-dir, SIGKILL, warm restart)"
SNAPDIR="$TMPDIR_SMOKE/snapdir"
"$TMPDIR_SMOKE/manrsd" -scale small -listen 127.0.0.1:0 -admin 127.0.0.1:0 \
    -data-dir "$SNAPDIR" >"$TMPDIR_SMOKE/crash1.log" 2>&1 &
MANRSD_PID=$!
# Wait for the snapshot to be archived: from that point the commit is
# durable and a SIGKILL must not lose it.
ARCHIVED=""
for _ in $(seq 1 600); do
    grep -q 'archived snapshot' "$TMPDIR_SMOKE/crash1.log" && { ARCHIVED=1; break; }
    kill -0 "$MANRSD_PID" 2>/dev/null || {
        echo "crash smoke: daemon exited before archiving:" >&2
        cat "$TMPDIR_SMOKE/crash1.log" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$ARCHIVED" ]; then
    echo "crash smoke: daemon never archived a snapshot" >&2
    cat "$TMPDIR_SMOKE/crash1.log" >&2
    exit 1
fi
kill -9 "$MANRSD_PID" 2>/dev/null || true
wait "$MANRSD_PID" 2>/dev/null || true
MANRSD_PID=""
# Restart over the same directory: must warm-start from the archive.
"$TMPDIR_SMOKE/manrsd" -scale small -listen 127.0.0.1:0 -admin 127.0.0.1:0 \
    -data-dir "$SNAPDIR" >"$TMPDIR_SMOKE/crash2.log" 2>&1 &
MANRSD_PID=$!
SERVE_ADDR=""
for _ in $(seq 1 600); do
    SERVE_ADDR="$(sed -n 's|.*serving conformance queries on http://||p' "$TMPDIR_SMOKE/crash2.log")"
    [ -n "$SERVE_ADDR" ] && break
    kill -0 "$MANRSD_PID" 2>/dev/null || {
        echo "crash smoke: restarted daemon exited early:" >&2
        cat "$TMPDIR_SMOKE/crash2.log" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$SERVE_ADDR" ]; then
    echo "crash smoke: restarted daemon never logged its serving address" >&2
    cat "$TMPDIR_SMOKE/crash2.log" >&2
    exit 1
fi
grep -q 'snapshot(s) restored from archive' "$TMPDIR_SMOKE/crash2.log" || {
    echo "crash smoke: restart did not warm-start from the archive:" >&2
    cat "$TMPDIR_SMOKE/crash2.log" >&2
    exit 1
}
WARM_CODE="$(curl -s -o "$TMPDIR_SMOKE/crash-stats.json" -w '%{http_code}' "http://$SERVE_ADDR/v1/stats")"
if [ "$WARM_CODE" != 200 ]; then
    echo "crash smoke: first query after warm restart returned $WARM_CODE, want 200" >&2
    cat "$TMPDIR_SMOKE/crash-stats.json" >&2
    exit 1
fi
MANRSD_ADMIN="$(sed -n 's|.*admin endpoint on http://||p' "$TMPDIR_SMOKE/crash2.log")"
curl -s -o "$TMPDIR_SMOKE/crash.metrics" "http://$MANRSD_ADMIN/metrics"
DURABLE_LOADS="$(sed -n 's/^durable_load_total //p' "$TMPDIR_SMOKE/crash.metrics")"
if [ "${DURABLE_LOADS:-0}" -lt 1 ]; then
    echo "crash smoke: durable_load_total = ${DURABLE_LOADS:-absent}, want >= 1" >&2
    grep '^durable' "$TMPDIR_SMOKE/crash.metrics" >&2 || true
    exit 1
fi
kill -TERM "$MANRSD_PID"
CRASH_STATUS=0
wait "$MANRSD_PID" || CRASH_STATUS=$?
MANRSD_PID=""
if [ "$CRASH_STATUS" != 0 ]; then
    echo "crash smoke: restarted daemon exited $CRASH_STATUS on SIGTERM" >&2
    cat "$TMPDIR_SMOKE/crash2.log" >&2
    exit 1
fi
grep -q 'drained cleanly' "$TMPDIR_SMOKE/crash2.log" || {
    echo "crash smoke: no clean-drain log line after warm restart:" >&2
    cat "$TMPDIR_SMOKE/crash2.log" >&2
    exit 1
}

echo "==> loadgen smoke (seeded workload, SLO gate, end-to-end trace correlation)"
go build -o "$TMPDIR_SMOKE/loadgen" ./cmd/loadgen
"$TMPDIR_SMOKE/manrsd" -scale small -listen 127.0.0.1:0 -admin 127.0.0.1:0 \
    -access-log-sample 1 >"$TMPDIR_SMOKE/lg-manrsd.log" 2>&1 &
MANRSD_PID=$!
SERVE_ADDR=""
for _ in $(seq 1 300); do
    SERVE_ADDR="$(sed -n 's|.*serving conformance queries on http://||p' "$TMPDIR_SMOKE/lg-manrsd.log")"
    [ -n "$SERVE_ADDR" ] && break
    kill -0 "$MANRSD_PID" 2>/dev/null || {
        echo "loadgen smoke: daemon exited early:" >&2
        cat "$TMPDIR_SMOKE/lg-manrsd.log" >&2
        exit 1
    }
    sleep 0.1
done
MANRSD_ADMIN="$(sed -n 's|.*admin endpoint on http://||p' "$TMPDIR_SMOKE/lg-manrsd.log")"
if [ -z "$SERVE_ADDR" ] || [ -z "$MANRSD_ADMIN" ]; then
    echo "loadgen smoke: daemon never logged serving/admin addresses" >&2
    cat "$TMPDIR_SMOKE/lg-manrsd.log" >&2
    exit 1
fi
# The seeded burst: closed loop, zipfian popularity, If-None-Match
# revalidation driving the 304 path. The gates are part of the command:
# -max-5xx 0 fails on any server error (503 shed excluded by design)
# and -slo-p99 fails if the small world cannot answer under a deliber-
# ately generous ceiling. 920 requests keep every span within the
# daemon's default -trace-cap, so the first trace stays greppable.
if ! BENCH_COMMIT="$BENCH_COMMIT" "$TMPDIR_SMOKE/loadgen" -base "http://$SERVE_ADDR" \
    -seed 7 -workers 6 -warmup-requests 120 -requests 800 -asn-count 800 \
    -revalidate 0.3 -slo-p99 2s -max-5xx 0 \
    -bench-out BENCH_ServeLatency.json >"$TMPDIR_SMOKE/loadgen.out" 2>&1; then
    echo "loadgen smoke: workload failed its gates:" >&2
    cat "$TMPDIR_SMOKE/loadgen.out" >&2
    exit 1
fi
cat "$TMPDIR_SMOKE/loadgen.out"
[ -f BENCH_ServeLatency.json ] || { echo "loadgen smoke: BENCH_ServeLatency.json missing" >&2; exit 1; }
# End-to-end correlation: the first trace ID minted by loadgen must be
# observable in the daemon's access log AND its span tree.
TRACE_ID="$(sed -n 's/^first traceparent trace_id=//p' "$TMPDIR_SMOKE/loadgen.out")"
if [ -z "$TRACE_ID" ]; then
    echo "loadgen smoke: no first-trace line in loadgen output" >&2
    exit 1
fi
grep -q "trace=$TRACE_ID" "$TMPDIR_SMOKE/lg-manrsd.log" || {
    echo "loadgen smoke: trace $TRACE_ID missing from the access log" >&2
    grep 'component=access' "$TMPDIR_SMOKE/lg-manrsd.log" | head -3 >&2 || true
    exit 1
}
curl -s -o "$TMPDIR_SMOKE/trace.tree" "http://$MANRSD_ADMIN/debug/trace"
grep -q "$TRACE_ID" "$TMPDIR_SMOKE/trace.tree" || {
    echo "loadgen smoke: trace $TRACE_ID missing from /debug/trace" >&2
    head -5 "$TMPDIR_SMOKE/trace.tree" >&2 || true
    exit 1
}
echo "loadgen smoke: trace $TRACE_ID correlated across access log and span tree"
# The revalidation knob must actually exercise the 304 path.
NOTMOD_PPM="$(bench_field BENCH_ServeLatency.json not_modified_ppm)"
if [ "${NOTMOD_PPM:-0}" -lt 1 ]; then
    echo "loadgen smoke: not_modified_ppm = ${NOTMOD_PPM:-absent}, want >= 1 (revalidation never hit)" >&2
    exit 1
fi
# Latency trajectory vs the committed baseline (informational).
for key in p50_ns p99_ns qps; do
    BASE_V="$(git show HEAD:BENCH_ServeLatency.json 2>/dev/null | sed -n 's/.*"'"$key"'": \([0-9][0-9]*\).*/\1/p' || true)"
    NEW_V="$(bench_field BENCH_ServeLatency.json "$key")"
    if [ -n "$BASE_V" ] && [ -n "$NEW_V" ]; then
        printf '  serve latency %s: %s -> %s (%+d)\n' "$key" "$BASE_V" "$NEW_V" "$((NEW_V - BASE_V))"
    else
        echo "  serve latency $key: no committed baseline"
    fi
done
kill -TERM "$MANRSD_PID"
LG_STATUS=0
wait "$MANRSD_PID" || LG_STATUS=$?
MANRSD_PID=""
if [ "$LG_STATUS" != 0 ]; then
    echo "loadgen smoke: daemon exited $LG_STATUS on SIGTERM" >&2
    cat "$TMPDIR_SMOKE/lg-manrsd.log" >&2
    exit 1
fi

echo "==> distributed serve tier smoke (3 replicas + manrs-gw, wire replication, ETag coherence, drain)"
go build -o "$TMPDIR_SMOKE/manrs-gw" ./cmd/manrs-gw

# wait_serve_addr LOGFILE PID VARNAME: poll a daemon log for its
# serving address; fail loudly if the process dies first.
wait_serve_addr() {
    _addr=""
    for _ in $(seq 1 600); do
        _addr="$(sed -n 's|.*serving conformance queries on http://||p' "$1")"
        [ -n "$_addr" ] && break
        kill -0 "$2" 2>/dev/null || {
            echo "cluster smoke: replica exited early ($1):" >&2
            cat "$1" >&2
            exit 1
        }
        sleep 0.1
    done
    if [ -z "$_addr" ]; then
        echo "cluster smoke: replica never logged its serving address ($1):" >&2
        cat "$1" >&2
        exit 1
    fi
    eval "$3=\"\$_addr\""
}

# Replicas 1 and 2 build the seed world locally.
"$TMPDIR_SMOKE/manrsd" -scale small -listen 127.0.0.1:0 -access-log-sample 1 \
    >"$TMPDIR_SMOKE/r1.log" 2>&1 &
R1_PID=$!
"$TMPDIR_SMOKE/manrsd" -scale small -listen 127.0.0.1:0 -access-log-sample 1 \
    >"$TMPDIR_SMOKE/r2.log" 2>&1 &
R2_PID=$!
wait_serve_addr "$TMPDIR_SMOKE/r1.log" "$R1_PID" R1_ADDR
wait_serve_addr "$TMPDIR_SMOKE/r2.log" "$R2_PID" R2_ADDR
# Replica 3 is the lagging replica: with -peers it must catch up from
# replica 1 over wire replication, never running a local build.
"$TMPDIR_SMOKE/manrsd" -scale small -listen 127.0.0.1:0 -access-log-sample 1 \
    -peers "http://$R1_ADDR" >"$TMPDIR_SMOKE/r3.log" 2>&1 &
R3_PID=$!
wait_serve_addr "$TMPDIR_SMOKE/r3.log" "$R3_PID" R3_ADDR
grep -q 'via wire replication (no local rebuild' "$TMPDIR_SMOKE/r3.log" || {
    echo "cluster smoke: replica 3 did not catch up over wire replication:" >&2
    cat "$TMPDIR_SMOKE/r3.log" >&2
    exit 1
}
echo "cluster smoke: replica 3 synced from a peer without a local rebuild"

# The gateway fronts all three with fast probes so the drain test
# converges quickly.
"$TMPDIR_SMOKE/manrs-gw" -replicas "http://$R1_ADDR,http://$R2_ADDR,http://$R3_ADDR" \
    -listen 127.0.0.1:0 -probe-interval 100ms -probe-timeout 1s \
    >"$TMPDIR_SMOKE/gw.log" 2>&1 &
GW_PID=$!
GW_ADDR=""
for _ in $(seq 1 100); do
    GW_ADDR="$(sed -n 's|.*gateway serving on http://\([0-9.:]*\) over .*|\1|p' "$TMPDIR_SMOKE/gw.log" | head -1)"
    [ -n "$GW_ADDR" ] && break
    kill -0 "$GW_PID" 2>/dev/null || {
        echo "cluster smoke: gateway exited early:" >&2
        cat "$TMPDIR_SMOKE/gw.log" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$GW_ADDR" ]; then
    echo "cluster smoke: gateway never logged its serving address" >&2
    cat "$TMPDIR_SMOKE/gw.log" >&2
    exit 1
fi

# ETag coherence: the gateway's answer for an entity must carry the
# same strong ETag a direct replica query does (fingerprint-scoped
# ETags are fleet-wide), and that ETag must revalidate to 304 through
# the gateway no matter which replica owns the key.
DIRECT_ETAG="$(curl -s -D - -o /dev/null "http://$R1_ADDR/v1/as/100/conformance" \
    | tr -d '\r' | sed -n 's/^[Ee][Tt]ag: //p')"
GW_CODE="$(curl -s -D "$TMPDIR_SMOKE/gw-conf.hdr" -o "$TMPDIR_SMOKE/gw-conf.json" \
    -w '%{http_code}' "http://$GW_ADDR/v1/as/100/conformance")"
if [ "$GW_CODE" != 200 ]; then
    echo "cluster smoke: gateway conformance lookup returned $GW_CODE, want 200" >&2
    cat "$TMPDIR_SMOKE/gw-conf.json" >&2
    exit 1
fi
GW_ETAG="$(tr -d '\r' <"$TMPDIR_SMOKE/gw-conf.hdr" | sed -n 's/^[Ee][Tt]ag: //p')"
if [ -z "$DIRECT_ETAG" ] || [ "$DIRECT_ETAG" != "$GW_ETAG" ]; then
    echo "cluster smoke: ETag incoherent: direct=$DIRECT_ETAG gateway=$GW_ETAG" >&2
    exit 1
fi
GW_REVAL="$(curl -s -o /dev/null -w '%{http_code}' \
    -H "If-None-Match: $GW_ETAG" "http://$GW_ADDR/v1/as/100/conformance")"
if [ "$GW_REVAL" != 304 ]; then
    echo "cluster smoke: revalidation through the gateway returned $GW_REVAL, want 304" >&2
    exit 1
fi
echo "cluster smoke: ETag coherent across gateway and replicas (200 -> 304)"

# Seeded burst through the gateway: zero 5xx allowed (503 shed
# excluded), p99 under a generous ceiling, recorded as
# BENCH_ClusterLatency.json for cross-commit comparison.
if ! BENCH_COMMIT="$BENCH_COMMIT" "$TMPDIR_SMOKE/loadgen" -targets "http://$GW_ADDR" \
    -seed 7 -workers 6 -warmup-requests 120 -requests 800 -asn-count 800 \
    -revalidate 0.3 -slo-p99 2s -max-5xx 0 \
    -bench-out BENCH_ClusterLatency.json -bench-name LoadgenClusterLatency \
    >"$TMPDIR_SMOKE/cluster-loadgen.out" 2>&1; then
    echo "cluster smoke: gateway workload failed its gates:" >&2
    cat "$TMPDIR_SMOKE/cluster-loadgen.out" >&2
    exit 1
fi
cat "$TMPDIR_SMOKE/cluster-loadgen.out"
[ -f BENCH_ClusterLatency.json ] || { echo "cluster smoke: BENCH_ClusterLatency.json missing" >&2; exit 1; }
for key in p50_ns p99_ns qps; do
    BASE_V="$(git show HEAD:BENCH_ClusterLatency.json 2>/dev/null | sed -n 's/.*"'"$key"'": \([0-9][0-9]*\).*/\1/p' || true)"
    NEW_V="$(bench_field BENCH_ClusterLatency.json "$key")"
    if [ -n "$BASE_V" ] && [ -n "$NEW_V" ]; then
        printf '  cluster latency %s: %s -> %s (%+d)\n' "$key" "$BASE_V" "$NEW_V" "$((NEW_V - BASE_V))"
    else
        echo "  cluster latency $key: no committed baseline"
    fi
done

# SIGTERM replica 3: it must drain cleanly, the ring must converge on
# the survivors, and the gateway must keep answering 200.
kill -TERM "$R3_PID"
R3_STATUS=0
wait "$R3_PID" || R3_STATUS=$?
R3_PID=""
if [ "$R3_STATUS" != 0 ]; then
    echo "cluster smoke: replica 3 exited $R3_STATUS on SIGTERM" >&2
    cat "$TMPDIR_SMOKE/r3.log" >&2
    exit 1
fi
grep -q 'drained cleanly' "$TMPDIR_SMOKE/r3.log" || {
    echo "cluster smoke: replica 3 did not drain cleanly:" >&2
    cat "$TMPDIR_SMOKE/r3.log" >&2
    exit 1
}
CONVERGED=""
for _ in $(seq 1 100); do
    if curl -s "http://$GW_ADDR/cluster/ring" | grep -q '"live": 2'; then
        CONVERGED=1
        break
    fi
    sleep 0.1
done
if [ -z "$CONVERGED" ]; then
    echo "cluster smoke: ring did not converge on the 2 survivors:" >&2
    curl -s "http://$GW_ADDR/cluster/ring" >&2 || true
    exit 1
fi
SURVIVE_CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://$GW_ADDR/v1/stats")"
if [ "$SURVIVE_CODE" != 200 ]; then
    echo "cluster smoke: gateway answered $SURVIVE_CODE after losing a replica, want 200" >&2
    exit 1
fi
echo "cluster smoke: replica drained, ring converged on survivors, gateway kept answering"
kill -TERM "$GW_PID" 2>/dev/null || true
wait "$GW_PID" 2>/dev/null || true
GW_PID=""
kill -TERM "$R1_PID" "$R2_PID" 2>/dev/null || true
wait "$R1_PID" 2>/dev/null || true
wait "$R2_PID" 2>/dev/null || true
R1_PID=""
R2_PID=""

echo "==> all checks passed"
