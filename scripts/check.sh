#!/bin/sh
# Pre-merge check: everything a change must pass before it lands.
# Run from the repository root (or via `make check`).
#
#   vet    — static analysis
#   build  — every package and command compiles
#   race   — full test suite under the race detector (includes the
#            chaos suites driving each daemon through injected faults)
#   fuzz   — short smoke of the BGP wire-format fuzzers, so decoder
#            regressions on malformed input surface before merge
set -eu

FUZZTIME="${FUZZTIME:-5s}"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime "$FUZZTIME" ./internal/bgp/wire
go test -run '^$' -fuzz '^FuzzDecodeAttributes$' -fuzztime "$FUZZTIME" ./internal/bgp/wire

echo "==> all checks passed"
