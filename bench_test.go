package manrsmeter

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md's per-experiment index), plus the ablation benches for the
// design choices DESIGN.md calls out. Each figure bench re-runs the
// experiment computation over a shared, lazily-built pipeline so -bench
// output reports the marginal cost of the analysis itself; the dataset
// build and world generation are benchmarked separately.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"manrsmeter/internal/bgp/mrt"
	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/core"
	"manrsmeter/internal/durable"
	"manrsmeter/internal/hegemony"
	"manrsmeter/internal/irr"
	"manrsmeter/internal/netx"
	"manrsmeter/internal/obsv"
	"manrsmeter/internal/rov"
	"manrsmeter/internal/rpki"
	"manrsmeter/internal/rpki/rtr"
	"manrsmeter/internal/rpsl"
	"manrsmeter/internal/synth"
)

var (
	benchOnce sync.Once
	benchPipe *core.Pipeline
	benchErr  error

	largeOnce sync.Once
	largeWrld *synth.World
	largeErr  error
)

// largeWorld returns the shared internet-scale world (~75k ASes, ~1M
// prefixes, synth.NewLargeConfig). Its benches are opt-in via
// MANRS_LARGE=1: generation plus a serial dataset build runs for minutes
// on one core, far beyond the default bench smoke budget.
func largeWorld(b *testing.B) *synth.World {
	b.Helper()
	if os.Getenv("MANRS_LARGE") == "" {
		b.Skip("set MANRS_LARGE=1 to run internet-scale benchmarks")
	}
	largeOnce.Do(func() {
		largeWrld, largeErr = synth.Generate(synth.NewLargeConfig(1))
	})
	if largeErr != nil {
		b.Fatal(largeErr)
	}
	return largeWrld
}

// benchConfig is the shared bench world: big enough that every cohort is
// populated, small enough that go test -bench runs in minutes.
func benchConfig(seed int64) synth.Config {
	cfg := synth.NewConfig(seed)
	cfg.Tier1s = 4
	cfg.LargeISPs = 4
	cfg.MediumISPs = 80
	cfg.SmallASes = 1600
	cfg.CDNs = 10
	cfg.MANRSSmall = 90
	cfg.MANRSMedium = 30
	cfg.MANRSLarge = 4
	cfg.MANRSCDNs = 5
	return cfg
}

func pipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		world, err := synth.Generate(benchConfig(1))
		if err != nil {
			benchErr = err
			return
		}
		benchPipe, benchErr = core.NewPipeline(world)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchPipe
}

// --- Figure and table benches ---

func BenchmarkFig2Growth(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := p.Fig2Growth(); len(r.Years) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig4aASesByRIR(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := p.Fig4ByRIR(); len(r.ASes) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig4bAddressSpace(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := p.Fig4ByRIR(); len(r.SpacePct) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFinding70Completeness(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := p.Finding70(); r.MemberOrgs == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig5aRPKIOrigination(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := p.Fig5aRPKIOrigination(); len(f.Cohorts) != 6 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFig5bIRROrigination(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := p.Fig5bIRROrigination(); len(f.Cohorts) != 6 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkAction4Conformance(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := p.Action4(); len(rs) != 2 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkTable1CaseStudies(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Table1CaseStudies(3, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStability(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Stability(3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Saturation(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fig6Saturation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aRPKIPropagation(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := p.Fig7aRPKIPropagation(); len(f.Cohorts) != 6 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFig7bIRRPropagation(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := p.Fig7bIRRPropagation(); len(f.Cohorts) != 6 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFig8Unconformant(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := p.Fig8Unconformant(); len(f.Cohorts) != 6 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkTable2Action1(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := p.Table2Action1(); len(rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig9PreferenceScore(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := p.Fig9Preference(); len(r.Scores) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- Pipeline-stage benches ---

func BenchmarkGenerateWorld(b *testing.B) {
	cfg := benchConfig(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatasetBuild(b *testing.B) {
	// BuildDatasetAt bypasses the DatasetAt memoization cache, so every
	// iteration measures a full serial build. bytes/op and allocs/op are
	// the tracked numbers: the compact layout's budget lives in check.sh's
	// memory gate.
	b.Run("seed", func(b *testing.B) {
		world, err := synth.Generate(benchConfig(3))
		if err != nil {
			b.Fatal(err)
		}
		asOf := world.Date(world.Config.EndYear)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := world.BuildDatasetAt(asOf, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("large", func(b *testing.B) {
		world := largeWorld(b)
		asOf := world.Date(world.Config.EndYear)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := world.BuildDatasetAt(asOf, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBuildDatasetParallel measures the same full build across
// worker counts; compare against workers=1 for the parallel speedup.
func BenchmarkBuildDatasetParallel(b *testing.B) {
	world, err := synth.Generate(benchConfig(3))
	if err != nil {
		b.Fatal(err)
	}
	asOf := world.Date(world.Config.EndYear)
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := world.BuildDatasetAt(asOf, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFullReport(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := RunReportWithPipeline(io.Discard, p, ReportOptions{SkipStability: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md "design choices") ---

// rovFixture builds an index with n random authorizations plus the query
// set used by both variants.
func rovFixture(n int) (*rov.Index, []netx.Prefix, []uint32) {
	r := rand.New(rand.NewSource(42))
	ix := rov.NewIndex()
	for i := 0; i < n; i++ {
		var a [4]byte
		r.Read(a[:])
		bits := 8 + r.Intn(17)
		p, _ := netx.PrefixFrom(netip.AddrFrom4(a), bits)
		_ = ix.Add(rov.Authorization{Prefix: p, ASN: uint32(64500 + r.Intn(500)), MaxLength: bits + r.Intn(33-bits)})
	}
	prefixes := make([]netx.Prefix, 256)
	asns := make([]uint32, 256)
	for i := range prefixes {
		var a [4]byte
		r.Read(a[:])
		bits := 8 + r.Intn(25)
		prefixes[i], _ = netx.PrefixFrom(netip.AddrFrom4(a), bits)
		asns[i] = uint32(64500 + r.Intn(500))
	}
	return ix, prefixes, asns
}

// BenchmarkROVTrieVsLinear quantifies the covering-lookup trie against a
// full scan for RFC 6811 classification.
func BenchmarkROVTrieVsLinear(b *testing.B) {
	ix, prefixes, asns := rovFixture(10000)
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := i % len(prefixes)
			ix.Validate(prefixes[q], asns[q])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := i % len(prefixes)
			ix.ValidateLinear(prefixes[q], asns[q])
		}
	})
}

// BenchmarkHegemonyTrim compares the 10%-trimmed hegemony against the
// plain mean on realistic path sets.
func BenchmarkHegemonyTrim(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	paths := make([][]uint32, 40)
	for i := range paths {
		path := []uint32{uint32(1000 + i)}
		for h := 0; h < 2+r.Intn(4); h++ {
			path = append(path, uint32(100+r.Intn(30)))
		}
		paths[i] = append(path, 999)
	}
	b.Run("trim10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hegemony.Scores(paths, hegemony.DefaultTrim)
		}
	})
	b.Run("mean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hegemony.Scores(paths, 0)
		}
	})
}

// BenchmarkAsSetExpansion measures transitive as-set expansion with deep
// nesting and cycles.
func BenchmarkAsSetExpansion(b *testing.B) {
	db := irr.NewDatabase("BENCH")
	for i := 0; i < 200; i++ {
		o := &rpsl.Object{}
		o.Add("as-set", benchSetName(i))
		members := ""
		for m := 0; m < 5; m++ {
			members += rpsl.FormatASN(uint32(i*10+m)) + ", "
		}
		members += benchSetName((i + 1) % 200) // chain with a terminal cycle
		o.Add("members", members)
		if err := db.AddObject(o); err != nil {
			b.Fatal(err)
		}
	}
	reg := irr.NewRegistry()
	reg.AddDatabase(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		asns, _ := reg.ExpandASSet(benchSetName(0))
		if len(asns) != 1000 {
			b.Fatalf("expanded %d", len(asns))
		}
	}
}

func benchSetName(i int) string { return "AS-BENCH-" + string(rune('A'+i%26)) + itoa(i) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkPropagation compares valley-free flooding with and without
// import filters (the ROV cost inside the simulator).
func BenchmarkPropagation(b *testing.B) {
	world, err := synth.Generate(benchConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	g := world.Graph
	origins := g.Originations()
	if len(origins) == 0 {
		b.Fatal("no originations")
	}
	b.Run("no-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			og := origins[i%len(origins)]
			g.Propagate(og.Prefix, og.Origin, nil)
		}
	})
	b.Run("rov-filter", func(b *testing.B) {
		filter := func(importer, neighbor uint32, _ netx.Prefix, _ uint32) bool {
			_, deploys := world.Policies[importer]
			return !deploys || importer%2 == 0
		}
		for i := 0; i < b.N; i++ {
			og := origins[i%len(origins)]
			g.Propagate(og.Prefix, og.Origin, filter)
		}
	})
	b.Run("large", func(b *testing.B) {
		lw := largeWorld(b)
		lg := lw.Graph
		lo := lg.Originations()
		if len(lo) == 0 {
			b.Fatal("no originations")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			og := lo[i%len(lo)]
			lg.Propagate(og.Prefix, og.Origin, nil)
		}
	})
}

// --- Substrate micro-benches ---

func BenchmarkBGPUpdateEncodeDecode(b *testing.B) {
	u := &wire.Update{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{64500, 64501, 64502, 4200000001}}},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI: []netx.Prefix{
			netx.MustParsePrefix("198.51.100.0/24"),
			netx.MustParsePrefix("203.0.113.0/24"),
			netx.MustParsePrefix("10.0.0.0/8"),
		},
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wire.Encode(u); err != nil {
				b.Fatal(err)
			}
		}
	})
	enc, err := wire.Encode(u)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wire.Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHijackImpact runs the §12-extension incident simulation.
func BenchmarkHijackImpact(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.HijackImpact(50, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAction3 evaluates the contact-registration extension.
func BenchmarkAction3(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := p.Action3(); r.MemberTotal == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkRouteLeaks runs the RFC 7908 leak-incident extension.
func BenchmarkRouteLeaks(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RouteLeaks(20, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benches (cont.) ---

func BenchmarkTrieCovering(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	tr := netx.NewTrie[int](false)
	for i := 0; i < 50000; i++ {
		var a [4]byte
		r.Read(a[:])
		p, _ := netx.PrefixFrom(netip.AddrFrom4(a), 8+r.Intn(17))
		tr.Insert(p, i)
	}
	queries := make([]netx.Prefix, 1024)
	for i := range queries {
		var a [4]byte
		r.Read(a[:])
		queries[i], _ = netx.PrefixFrom(netip.AddrFrom4(a), 8+r.Intn(25))
	}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tr.Covering(dst[:0], queries[i%len(queries)])
	}
}

func BenchmarkRPSLParse(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "route: 10.%d.0.0/16\norigin: AS%d\ndescr: bench object %d\n+ continued line\nsource: BENCH\n\n", i%256, 64500+i, i)
	}
	input := sb.String()
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs, err := rpsl.ParseAll(strings.NewReader(input))
		if err != nil || len(objs) != 200 {
			b.Fatalf("parse: %v (%d objs)", err, len(objs))
		}
	}
}

func BenchmarkROASignAndValidate(b *testing.B) {
	t0 := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	t1 := t0.AddDate(5, 0, 0)
	ta, err := rpki.NewTrustAnchor(rpki.RIPE, []netx.Prefix{netx.MustParsePrefix("10.0.0.0/8")}, t0, t1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := ta.SignROA(64500, []rpki.ROAPrefix{{Prefix: netx.MustParsePrefix("10.1.0.0/16"), MaxLength: 24}}, t0, t1)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("relying-party", func(b *testing.B) {
		repo := &rpki.Repository{}
		for i := 0; i < 200; i++ {
			roa, err := ta.SignROA(uint32(64500+i), []rpki.ROAPrefix{{Prefix: netx.MustParsePrefix("10.1.0.0/16"), MaxLength: 24}}, t0, t1)
			if err != nil {
				b.Fatal(err)
			}
			repo.AddROA(roa)
		}
		rp, err := rpki.NewRelyingParty(ta.Cert)
		if err != nil {
			b.Fatal(err)
		}
		rp.Now = t0.AddDate(1, 0, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vrps, _ := rp.Run(repo)
			if len(vrps) != 200 {
				b.Fatalf("vrps = %d", len(vrps))
			}
		}
	})
}

func BenchmarkMRTRoundTrip(b *testing.B) {
	ts := time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)
	peers := []mrt.Peer{{BGPID: [4]byte{1, 1, 1, 1}, Addr: netip.MustParseAddr("10.0.0.1"), ASN: 64500}}
	var ref bytes.Buffer
	w := mrt.NewWriter(&ref, ts)
	if err := w.WritePeerIndexTable([4]byte{9, 9, 9, 9}, "bench", peers); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := netx.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
		err := w.WriteRIB(p, []mrt.RIBEntry{{PeerIndex: 0, OriginatedTime: ts, Path: []uint32{64500, uint32(65000 + i)}}})
		if err != nil {
			b.Fatal(err)
		}
	}
	raw := ref.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dump, err := mrt.NewReader(bytes.NewReader(raw)).ReadAll()
		if err != nil || len(dump.Records) != 500 {
			b.Fatalf("read: %v", err)
		}
	}
}

func BenchmarkRTRFetch(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	vrps := make([]rpki.VRP, 2000)
	for i := range vrps {
		var a [4]byte
		r.Read(a[:])
		bits := 16 + r.Intn(9)
		p, _ := netx.PrefixFrom(netip.AddrFrom4(a), bits)
		vrps[i] = rpki.VRP{Prefix: p, ASN: uint32(64500 + i), MaxLength: bits}
	}
	srv := rtr.NewServer(vrps)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rtr.Fetch(addr.String())
		if err != nil || len(res.VRPs) != len(vrps) {
			b.Fatalf("fetch: %v", err)
		}
	}
}

// --- Durability benches ---

// benchSnapshotData assembles the durable archive payload for the
// shared bench world: the real headline dataset plus validation
// registries derived from its originations — the same shape manrsd
// persists after every successful build.
func benchSnapshotData(b *testing.B) *durable.SnapshotData {
	p := pipeline(b)
	ds := p.Dataset()
	auths := make([]rov.Authorization, 0, len(ds.PrefixOrigins))
	for _, po := range ds.PrefixOrigins {
		auths = append(auths, rov.Authorization{
			Prefix:    po.Prefix,
			ASN:       po.Origin,
			MaxLength: po.Prefix.Bits(),
		})
	}
	key := durable.Key{Fingerprint: p.World.Fingerprint(), Date: p.AsOf}
	return &durable.SnapshotData{
		Fingerprint:   p.World.Fingerprint(),
		Version:       key.String(),
		Date:          p.AsOf,
		PrefixOrigins: ds.PrefixOrigins,
		Transits:      ds.Transits,
		Visibility:    ds.Visibility,
		RPKI:          auths,
		IRR:           auths,
	}
}

// BenchmarkSnapshotPersist measures the durable archive write path —
// encode, checksum, temp+fsync+rename commit, manifest update, GC —
// for a full bench-world snapshot. Content alternates between two
// variants so the identical-content skip never fires and every
// iteration pays for a real commit.
func BenchmarkSnapshotPersist(b *testing.B) {
	base := benchSnapshotData(b)
	store, err := durable.Open(b.TempDir(), durable.Options{Registry: obsv.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	variants := [2]durable.SnapshotData{*base, *base}
	variants[1].Version += "+alt"
	b.SetBytes(int64(len(durable.Encode(base))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Save(ctx, &variants[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad measures warm-start recovery cost per archive:
// read, checksum-verify, and decode the newest archive for a key —
// the disk-to-servable latency a restarted manrsd pays per snapshot.
func BenchmarkSnapshotLoad(b *testing.B) {
	data := benchSnapshotData(b)
	store, err := durable.Open(b.TempDir(), durable.Options{Registry: obsv.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := store.Save(ctx, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(durable.Encode(data))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := store.Load(ctx, data.Key())
		if err != nil {
			b.Fatal(err)
		}
		if got.Version != data.Version {
			b.Fatalf("loaded version %q, want %q", got.Version, data.Version)
		}
	}
}

// BenchmarkServeConformance measures the serving hot path: a per-AS
// conformance query answered from the version-keyed response cache of a
// pre-warmed query server (no snapshot build, no pipeline work — the
// admission, cache lookup, ETag, and write path).
func BenchmarkServeConformance(b *testing.B) {
	p := pipeline(b)
	store := NewSnapshotStore(p.World, SnapshotStoreOptions{})
	srv := NewQueryServer(store, QueryServerOptions{})
	h := srv.Handler()
	path := fmt.Sprintf("/v1/as/%d/conformance", p.World.Graph.ASNs()[0])

	// Warm the snapshot and the response cache.
	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest(http.MethodGet, path, nil))
	if warm.Code != http.StatusOK {
		b.Fatalf("warm request: %d %s", warm.Code, warm.Body.String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
