package manrsmeter

import (
	"fmt"
	"io"
	"time"

	"manrsmeter/internal/core"
	"manrsmeter/internal/parallel"
)

// ReportOptions controls RunReport.
type ReportOptions struct {
	// StabilityWeeks is the number of weekly snapshots for the §8.5
	// analysis; zero means 12 (the paper's count). Stability is the most
	// expensive experiment; set SkipStability to omit it.
	StabilityWeeks int
	SkipStability  bool
	// CaseStudyCDNs / CaseStudyISPs bound Table 1; zeros mean 3 and 3.
	CaseStudyCDNs, CaseStudyISPs int
	// SkipExtensions omits the beyond-the-paper experiments (hijack
	// containment); HijackIncidents sets the incident count (zero = 200).
	SkipExtensions  bool
	HijackIncidents int
	// Workers bounds the goroutines the staged runner fans the report
	// sections (and their dataset builds) across; ≤ 0 means one per CPU.
	// The report bytes are identical for every worker count.
	Workers int
	// Trace, when non-nil, receives one per-section wall-time line after
	// the report is written, in section order.
	Trace io.Writer
}

// section is one independently computable unit of the report: sections
// run concurrently and their outputs are emitted in declaration order.
type section struct {
	name string
	run  func() (string, error)
}

// RunReport regenerates every table and figure of the paper's evaluation
// over the given world and writes the rendered results to w.
func RunReport(w io.Writer, world *World, opts ReportOptions) error {
	pipe, err := core.NewPipelineWith(world, core.Options{Workers: opts.Workers})
	if err != nil {
		return err
	}
	return RunReportWithPipeline(w, pipe, opts)
}

// RunReportWithPipeline is RunReport over an already-built pipeline.
//
// The sections are staged: every section is a pure function of the
// pipeline's immutable state, so they execute concurrently across
// opts.Workers goroutines, each buffering its rendered output; the
// buffers are then written in the paper's section order. Output is
// byte-identical to a sequential run.
func RunReportWithPipeline(w io.Writer, pipe *Pipeline, opts ReportOptions) error {
	if opts.CaseStudyCDNs == 0 {
		opts.CaseStudyCDNs = 3
	}
	if opts.CaseStudyISPs == 0 {
		opts.CaseStudyISPs = 3
	}

	sections := []section{
		{"Fig2Growth", func() (string, error) { return pipe.Fig2Growth().Render(), nil }},
		{"Fig4ByRIR", func() (string, error) { return pipe.Fig4ByRIR().Render(), nil }},
		{"Finding70", func() (string, error) { return pipe.Finding70().Render(), nil }},
		{"Fig5aRPKIOrigination", func() (string, error) { return pipe.Fig5aRPKIOrigination().Render(), nil }},
		{"Fig5bIRROrigination", func() (string, error) { return pipe.Fig5bIRROrigination().Render(), nil }},
		{"Action4", func() (string, error) { return core.RenderAction4(pipe.Action4()), nil }},
		{"Table1CaseStudies", func() (string, error) {
			rows, err := pipe.Table1CaseStudies(opts.CaseStudyCDNs, opts.CaseStudyISPs)
			if err != nil {
				return "", err
			}
			return core.RenderTable1(rows), nil
		}},
		{"Stability", func() (string, error) {
			if opts.SkipStability {
				return "Finding 8.7 — stability analysis skipped (ReportOptions.SkipStability)", nil
			}
			res, err := pipe.Stability(opts.StabilityWeeks)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"Fig6Saturation", func() (string, error) {
			res, err := pipe.Fig6Saturation()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"Fig7aRPKIPropagation", func() (string, error) { return pipe.Fig7aRPKIPropagation().Render(), nil }},
		{"Fig7bIRRPropagation", func() (string, error) { return pipe.Fig7bIRRPropagation().Render(), nil }},
		{"Fig8Unconformant", func() (string, error) { return pipe.Fig8Unconformant().Render(), nil }},
		{"Table2Action1", func() (string, error) { return core.RenderTable2(pipe.Table2Action1()), nil }},
		{"Fig9Preference", func() (string, error) { return pipe.Fig9Preference().Render(), nil }},
		{"HijackImpact", func() (string, error) {
			if opts.SkipExtensions {
				return "Extension — hijack containment skipped (ReportOptions.SkipExtensions)", nil
			}
			n := opts.HijackIncidents
			if n == 0 {
				n = 200
			}
			res, err := pipe.HijackImpact(n, 1)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"Action3", func() (string, error) {
			if opts.SkipExtensions {
				return "Extension — Action 3 skipped (ReportOptions.SkipExtensions)", nil
			}
			return pipe.Action3().Render(), nil
		}},
		{"RouteLeaks", func() (string, error) {
			if opts.SkipExtensions {
				return "Extension — route leaks skipped (ReportOptions.SkipExtensions)", nil
			}
			res, err := pipe.RouteLeaks(100, 1)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	}

	outputs := make([]string, len(sections))
	elapsed := make([]time.Duration, len(sections))
	err := parallel.ForEachErr(len(sections), opts.Workers, func(i int) error {
		startAt := time.Now()
		s, err := sections[i].run()
		elapsed[i] = time.Since(startAt)
		if err != nil {
			return fmt.Errorf("report: section %s: %w", sections[i].name, err)
		}
		outputs[i] = s
		return nil
	})
	if err != nil {
		return err
	}
	for _, s := range outputs {
		if _, err := fmt.Fprintln(w, s); err != nil {
			return err
		}
	}
	if opts.Trace != nil {
		for i, sec := range sections {
			if _, err := fmt.Fprintf(opts.Trace, "trace: %-22s %12v\n", sec.name, elapsed[i].Round(time.Microsecond)); err != nil {
				return err
			}
		}
	}
	return nil
}
