package manrsmeter

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"time"

	"manrsmeter/internal/core"
	"manrsmeter/internal/obsv"
	"manrsmeter/internal/parallel"
)

// ReportOptions controls RunReport.
type ReportOptions struct {
	// StabilityWeeks is the number of weekly snapshots for the §8.5
	// analysis; zero means 12 (the paper's count). Stability is the most
	// expensive experiment; set SkipStability to omit it.
	StabilityWeeks int
	SkipStability  bool
	// CaseStudyCDNs / CaseStudyISPs bound Table 1; zeros mean 3 and 3.
	CaseStudyCDNs, CaseStudyISPs int
	// SkipExtensions omits the beyond-the-paper experiments (hijack
	// containment); HijackIncidents sets the incident count (zero = 200).
	SkipExtensions  bool
	HijackIncidents int
	// Workers bounds the goroutines the staged runner fans the report
	// sections (and their dataset builds) across; ≤ 0 means one per CPU.
	// The report bytes are identical for every worker count.
	Workers int
	// Tracer, when non-nil, records the run as hierarchical spans: a
	// "report" root, one "section" span per section (with its terminal
	// status), and whatever the sections start beneath them (pipeline
	// and dataset builds). Render with Tracer.WriteTree or export
	// Tracer.Events. Tracing never touches w, so report bytes stay
	// identical across worker counts with tracing enabled.
	Tracer *obsv.Tracer
	// Trace, when non-nil, receives one per-section wall-time line after
	// the report is written, in section order, followed by the goroutine
	// stacks of any panicked sections.
	//
	// Deprecated: Trace is a shim over Tracer kept for one release of
	// backward compatibility; new callers should set Tracer and render
	// its span tree instead.
	Trace io.Writer
	// SectionObserver, when non-nil, is called as each section reaches a
	// terminal status — the live feed an admin /healthz endpoint watches
	// while the run is in flight (the ContinueOnError health trailer is
	// the end-of-run rendering of the same states). Sections finish
	// concurrently; the observer must be safe for concurrent use.
	SectionObserver func(name, status string, wall time.Duration)
	// SectionTimeout is the per-section watchdog: a section still running
	// after this long is recorded as timed-out and its slot is abandoned
	// (its context is canceled so cooperative work stops). Zero disables
	// the watchdog.
	SectionTimeout time.Duration
	// ContinueOnError switches the runner into degraded mode: a failed,
	// panicked, or timed-out section renders a diagnostic stanza in its
	// slot instead of aborting the whole report, and the report ends with
	// a machine-readable health trailer (see the "health:" lines). The
	// successful sections remain byte-identical across worker counts.
	ContinueOnError bool

	// sectionHook, when non-nil, wraps every section's run function
	// before dispatch. It exists for tests, which use it to force panics,
	// watchdog timeouts, and cancellation stalls in otherwise healthy
	// sections.
	sectionHook func(name string, run sectionRun) sectionRun
}

// sectionRun computes one section's rendered output. The context is
// canceled when the section's watchdog expires or the report run is
// canceled; long-running sections (the stability fan-out) honor it,
// cheap pure-CPU sections may ignore it.
type sectionRun func(ctx context.Context) (string, error)

// section is one independently computable unit of the report: sections
// run concurrently and their outputs are emitted in declaration order.
type section struct {
	name string
	run  sectionRun
}

// sectionStatus classifies how a section's run ended. The zero value is
// statusCanceled so sections never dispatched (cancellation stopped the
// pool first) report correctly without bookkeeping.
type sectionStatus int

const (
	statusCanceled sectionStatus = iota
	statusOK
	statusFailed
	statusPanicked
	statusTimedOut
)

func (s sectionStatus) String() string {
	switch s {
	case statusOK:
		return "ok"
	case statusFailed:
		return "failed"
	case statusPanicked:
		return "panicked"
	case statusTimedOut:
		return "timed-out"
	default:
		return "canceled"
	}
}

// sectionOutcome is one section's result slot: exactly one of out (on
// ok) or err (otherwise) is meaningful. stack holds the goroutine stack
// of a panicked section, kept out of err so diagnostic stanzas stay
// deterministic.
type sectionOutcome struct {
	status sectionStatus
	out    string
	err    error
	stack  []byte
	wall   time.Duration
}

// RunReport regenerates every table and figure of the paper's evaluation
// over the given world and writes the rendered results to w.
func RunReport(w io.Writer, world *World, opts ReportOptions) error {
	return RunReportCtx(context.Background(), w, world, opts)
}

// RunReportCtx is RunReport with cancellation: ctx aborts the pipeline
// build and the section fan-out (SIGINT/SIGTERM wiring in cmd/ routes
// through here). See RunReportWithPipelineCtx for the failure semantics.
func RunReportCtx(ctx context.Context, w io.Writer, world *World, opts ReportOptions) error {
	pipe, err := core.NewPipelineCtx(ctx, world, core.Options{Workers: opts.Workers})
	if err != nil {
		return err
	}
	return RunReportWithPipelineCtx(ctx, w, pipe, opts)
}

// RunReportWithPipeline is RunReport over an already-built pipeline.
func RunReportWithPipeline(w io.Writer, pipe *Pipeline, opts ReportOptions) error {
	return RunReportWithPipelineCtx(context.Background(), w, pipe, opts)
}

// RunReportWithPipelineCtx is the staged report runner.
//
// The sections are staged: every section is a pure function of the
// pipeline's immutable state, so they execute concurrently across
// opts.Workers goroutines, each buffering its rendered output; the
// buffers are then written in the paper's section order. Output is
// byte-identical to a sequential run.
//
// Failure semantics: a panic inside a section is recovered and scoped
// to that section; opts.SectionTimeout bounds each section's wall time.
// By default the lowest-index section that failed, panicked, or timed
// out aborts the report with its error (deterministic regardless of
// scheduling). With opts.ContinueOnError the report completes anyway:
// bad sections render diagnostic stanzas in their slots, in paper
// order, and a machine-readable health trailer summarizes the run.
// Cancellation of ctx stops the fan-out and returns the cancellation
// cause; under ContinueOnError the sections already completed are still
// written first, so interrupted runs keep their finished work.
func RunReportWithPipelineCtx(ctx context.Context, w io.Writer, pipe *Pipeline, opts ReportOptions) error {
	if opts.CaseStudyCDNs == 0 {
		opts.CaseStudyCDNs = 3
	}
	if opts.CaseStudyISPs == 0 {
		opts.CaseStudyISPs = 3
	}

	sections := []section{
		{"Fig2Growth", func(context.Context) (string, error) { return pipe.Fig2Growth().Render(), nil }},
		{"Fig4ByRIR", func(context.Context) (string, error) { return pipe.Fig4ByRIR().Render(), nil }},
		{"Finding70", func(context.Context) (string, error) { return pipe.Finding70().Render(), nil }},
		{"Fig5aRPKIOrigination", func(context.Context) (string, error) { return pipe.Fig5aRPKIOrigination().Render(), nil }},
		{"Fig5bIRROrigination", func(context.Context) (string, error) { return pipe.Fig5bIRROrigination().Render(), nil }},
		{"Action4", func(context.Context) (string, error) { return core.RenderAction4(pipe.Action4()), nil }},
		{"Table1CaseStudies", func(context.Context) (string, error) {
			rows, err := pipe.Table1CaseStudies(opts.CaseStudyCDNs, opts.CaseStudyISPs)
			if err != nil {
				return "", err
			}
			return core.RenderTable1(rows), nil
		}},
		{"Stability", func(ctx context.Context) (string, error) {
			if opts.SkipStability {
				return "Finding 8.7 — stability analysis skipped (ReportOptions.SkipStability)", nil
			}
			res, err := pipe.StabilityCtx(ctx, opts.StabilityWeeks)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"Fig6Saturation", func(context.Context) (string, error) {
			res, err := pipe.Fig6Saturation()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"Fig7aRPKIPropagation", func(context.Context) (string, error) { return pipe.Fig7aRPKIPropagation().Render(), nil }},
		{"Fig7bIRRPropagation", func(context.Context) (string, error) { return pipe.Fig7bIRRPropagation().Render(), nil }},
		{"Fig8Unconformant", func(context.Context) (string, error) { return pipe.Fig8Unconformant().Render(), nil }},
		{"Table2Action1", func(context.Context) (string, error) { return core.RenderTable2(pipe.Table2Action1()), nil }},
		{"Fig9Preference", func(context.Context) (string, error) { return pipe.Fig9Preference().Render(), nil }},
		{"HijackImpact", func(context.Context) (string, error) {
			if opts.SkipExtensions {
				return "Extension — hijack containment skipped (ReportOptions.SkipExtensions)", nil
			}
			n := opts.HijackIncidents
			if n == 0 {
				n = 200
			}
			res, err := pipe.HijackImpact(n, 1)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"Action3", func(context.Context) (string, error) {
			if opts.SkipExtensions {
				return "Extension — Action 3 skipped (ReportOptions.SkipExtensions)", nil
			}
			return pipe.Action3().Render(), nil
		}},
		{"RouteLeaks", func(context.Context) (string, error) {
			if opts.SkipExtensions {
				return "Extension — route leaks skipped (ReportOptions.SkipExtensions)", nil
			}
			res, err := pipe.RouteLeaks(100, 1)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	}

	if opts.Tracer != nil {
		var root *obsv.Span
		ctx = obsv.ContextWithTracer(ctx, opts.Tracer)
		ctx, root = obsv.StartSpan(ctx, "report", obsv.KV("sections", len(sections)))
		defer root.End()
	}

	runStart := time.Now()
	outcomes := make([]sectionOutcome, len(sections))
	// The fan-out itself cannot fail the report: panics are recovered
	// inside runSection and cancellation leaves undispatched slots at
	// their zero value, which reads as statusCanceled.
	_ = parallel.ForEachCtx(ctx, len(sections), opts.Workers, func(i int) {
		run := sections[i].run
		if opts.sectionHook != nil {
			run = opts.sectionHook(sections[i].name, run)
		}
		sctx, span := obsv.StartSpan(ctx, "section", obsv.KV("name", sections[i].name))
		outcomes[i] = runSection(sctx, run, opts.SectionTimeout)
		span.SetAttr("status", outcomes[i].status.String())
		span.End()
		if opts.SectionObserver != nil {
			opts.SectionObserver(sections[i].name, outcomes[i].status.String(), outcomes[i].wall)
		}
	})
	runWall := time.Since(runStart)

	if !opts.ContinueOnError {
		for i, o := range outcomes {
			switch o.status {
			case statusOK:
			case statusCanceled:
				cause := o.err
				if cause == nil { // never dispatched: the pool stopped first
					cause = context.Cause(ctx)
				}
				return fmt.Errorf("report: canceled: %w", cause)
			default:
				return fmt.Errorf("report: section %s: %w", sections[i].name, o.err)
			}
		}
	}

	for i, o := range outcomes {
		text := o.out
		if o.status != statusOK {
			text = diagnosticStanza(sections[i].name, o)
		}
		if _, err := fmt.Fprintln(w, text); err != nil {
			return err
		}
	}
	if opts.Trace != nil {
		for i, sec := range sections {
			if _, err := fmt.Fprintf(opts.Trace, "trace: %-22s %12v\n", sec.name, outcomes[i].wall.Round(time.Microsecond)); err != nil {
				return err
			}
		}
		for i, o := range outcomes {
			if len(o.stack) > 0 {
				if _, err := fmt.Fprintf(opts.Trace, "trace: section %s panic stack:\n%s\n", sections[i].name, o.stack); err != nil {
					return err
				}
			}
		}
	}
	if opts.ContinueOnError {
		if err := writeHealthTrailer(w, sections, outcomes, runWall); err != nil {
			return err
		}
	}
	// Completed work is flushed above even when the run was interrupted;
	// the cancellation still decides the exit status.
	if err := context.Cause(ctx); err != nil {
		return fmt.Errorf("report: canceled: %w", err)
	}
	return nil
}

// runSection executes one section under its watchdog. The section runs
// in its own goroutine so a hang is bounded: when the watchdog (or the
// parent context) fires first, the slot is released and the section's
// context is canceled — a cooperative section unwinds promptly, and a
// non-cooperative one finishes into a buffered channel without holding
// a pool worker. Panics are recovered into the outcome with their
// stack.
func runSection(ctx context.Context, run sectionRun, timeout time.Duration) sectionOutcome {
	start := time.Now()
	sctx, cancel := context.WithCancel(ctx)
	var watchdog <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		watchdog = timer.C
	}
	defer cancel()

	done := make(chan sectionOutcome, 1) // buffered: an abandoned section must not block
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- sectionOutcome{
					status: statusPanicked,
					err:    fmt.Errorf("panic: %v", r),
					stack:  debug.Stack(),
				}
			}
		}()
		out, err := run(sctx)
		if err != nil {
			done <- sectionOutcome{status: statusFailed, err: err}
			return
		}
		done <- sectionOutcome{status: statusOK, out: out}
	}()

	var o sectionOutcome
	select {
	case o = <-done:
	case <-watchdog:
		cancel()
		// Give a cooperative section a moment to observe the canceled
		// context and report its (now canceled) result; otherwise abandon
		// the slot so one stuck section cannot stall the whole report.
		select {
		case <-done:
		case <-time.After(50 * time.Millisecond):
		}
		o = sectionOutcome{status: statusTimedOut, err: fmt.Errorf("watchdog: section timed out after %v", timeout)}
	case <-ctx.Done():
		o = sectionOutcome{status: statusCanceled, err: context.Cause(ctx)}
	}
	o.wall = time.Since(start)
	return o
}

// diagnosticStanza renders a failed section's slot. It is deterministic
// (no wall times, no stack addresses) so degraded reports stay
// byte-identical across worker counts for the same failures.
func diagnosticStanza(name string, o sectionOutcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "!! section %s unavailable (%s)\n", name, o.status)
	if o.err != nil {
		fmt.Fprintf(&b, "!!   %s\n", o.err)
	}
	b.WriteString("!! degraded run: ContinueOnError rendered this stanza in the section's slot")
	return b.String()
}

// writeHealthTrailer emits the machine-readable run summary that ends a
// degraded-mode report: one aggregate line, then one line per section
// with its status and wall time (and error, when it has one).
func writeHealthTrailer(w io.Writer, sections []section, outcomes []sectionOutcome, wall time.Duration) error {
	var ok, failed, panicked, timedOut, canceled int
	for _, o := range outcomes {
		switch o.status {
		case statusOK:
			ok++
		case statusFailed:
			failed++
		case statusPanicked:
			panicked++
		case statusTimedOut:
			timedOut++
		default:
			canceled++
		}
	}
	if _, err := fmt.Fprintf(w, "health: sections=%d ok=%d failed=%d panicked=%d timed-out=%d canceled=%d wall=%v\n",
		len(sections), ok, failed, panicked, timedOut, canceled, wall.Round(time.Microsecond)); err != nil {
		return err
	}
	for i, sec := range sections {
		o := outcomes[i]
		if o.status == statusOK {
			if _, err := fmt.Fprintf(w, "health: section=%s status=%s wall=%v\n", sec.name, o.status, o.wall.Round(time.Microsecond)); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "health: section=%s status=%s wall=%v err=%q\n", sec.name, o.status, o.wall.Round(time.Microsecond), errText(o.err)); err != nil {
			return err
		}
	}
	return nil
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
