package manrsmeter

import (
	"fmt"
	"io"

	"manrsmeter/internal/core"
)

// ReportOptions controls RunReport.
type ReportOptions struct {
	// StabilityWeeks is the number of weekly snapshots for the §8.5
	// analysis; zero means 12 (the paper's count). Stability is the most
	// expensive experiment; set SkipStability to omit it.
	StabilityWeeks int
	SkipStability  bool
	// CaseStudyCDNs / CaseStudyISPs bound Table 1; zeros mean 3 and 3.
	CaseStudyCDNs, CaseStudyISPs int
	// SkipExtensions omits the beyond-the-paper experiments (hijack
	// containment); HijackIncidents sets the incident count (zero = 200).
	SkipExtensions  bool
	HijackIncidents int
}

// RunReport regenerates every table and figure of the paper's evaluation
// over the given world and writes the rendered results to w.
func RunReport(w io.Writer, world *World, opts ReportOptions) error {
	pipe, err := core.NewPipeline(world)
	if err != nil {
		return err
	}
	return RunReportWithPipeline(w, pipe, opts)
}

// RunReportWithPipeline is RunReport over an already-built pipeline.
func RunReportWithPipeline(w io.Writer, pipe *Pipeline, opts ReportOptions) error {
	if opts.CaseStudyCDNs == 0 {
		opts.CaseStudyCDNs = 3
	}
	if opts.CaseStudyISPs == 0 {
		opts.CaseStudyISPs = 3
	}
	out := func(s string) error {
		_, err := fmt.Fprintln(w, s)
		return err
	}

	sections := []func() (string, error){
		func() (string, error) { return pipe.Fig2Growth().Render(), nil },
		func() (string, error) { return pipe.Fig4ByRIR().Render(), nil },
		func() (string, error) { return pipe.Finding70().Render(), nil },
		func() (string, error) { return pipe.Fig5aRPKIOrigination().Render(), nil },
		func() (string, error) { return pipe.Fig5bIRROrigination().Render(), nil },
		func() (string, error) { return core.RenderAction4(pipe.Action4()), nil },
		func() (string, error) {
			rows, err := pipe.Table1CaseStudies(opts.CaseStudyCDNs, opts.CaseStudyISPs)
			if err != nil {
				return "", err
			}
			return core.RenderTable1(rows), nil
		},
		func() (string, error) {
			if opts.SkipStability {
				return "Finding 8.7 — stability analysis skipped (ReportOptions.SkipStability)", nil
			}
			res, err := pipe.Stability(opts.StabilityWeeks)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		},
		func() (string, error) {
			res, err := pipe.Fig6Saturation()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		},
		func() (string, error) { return pipe.Fig7aRPKIPropagation().Render(), nil },
		func() (string, error) { return pipe.Fig7bIRRPropagation().Render(), nil },
		func() (string, error) { return pipe.Fig8Unconformant().Render(), nil },
		func() (string, error) { return core.RenderTable2(pipe.Table2Action1()), nil },
		func() (string, error) { return pipe.Fig9Preference().Render(), nil },
		func() (string, error) {
			if opts.SkipExtensions {
				return "Extension — hijack containment skipped (ReportOptions.SkipExtensions)", nil
			}
			n := opts.HijackIncidents
			if n == 0 {
				n = 200
			}
			res, err := pipe.HijackImpact(n, 1)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		},
		func() (string, error) {
			if opts.SkipExtensions {
				return "Extension — Action 3 skipped (ReportOptions.SkipExtensions)", nil
			}
			return pipe.Action3().Render(), nil
		},
		func() (string, error) {
			if opts.SkipExtensions {
				return "Extension — route leaks skipped (ReportOptions.SkipExtensions)", nil
			}
			res, err := pipe.RouteLeaks(100, 1)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		},
	}
	for _, section := range sections {
		s, err := section()
		if err != nil {
			return err
		}
		if err := out(s); err != nil {
			return err
		}
	}
	return nil
}
