// Filter generation: the bgpq4 workflow behind MANRS Action 1. An
// upstream reads its customer's aut-num policy from the IRR, expands the
// announced as-set to origins, collects their registered routes into a
// prefix filter, and shows the filter accepting registered announcements
// while rejecting a hijack and an unregistered more-specific.
//
// Run with:
//
//	go run ./examples/filter-gen
package main

import (
	"fmt"
	"log"
	"strings"

	"manrsmeter/internal/irr"
	"manrsmeter/internal/netx"
	"manrsmeter/internal/rpsl"
)

const customerIRR = `
aut-num: AS64500
as-name: CUSTOMER-NET
import: from AS65000 accept ANY
export: to AS65000 announce AS-CUSTNET
source: EXAMPLE

as-set: AS-CUSTNET
members: AS64500, AS64510
source: EXAMPLE

route: 198.51.100.0/24
origin: AS64500
source: EXAMPLE

route: 203.0.113.0/24
origin: AS64510
source: EXAMPLE

route6: 2001:db8:1000::/36
origin: AS64500
source: EXAMPLE
`

func main() {
	log.SetFlags(0)

	db := irr.NewDatabase("EXAMPLE")
	if skipped, err := db.Load(strings.NewReader(customerIRR)); err != nil || skipped != 0 {
		log.Fatalf("load IRR objects: skipped=%d err=%v", skipped, err)
	}
	registry := irr.NewRegistry()
	registry.AddDatabase(db)

	// 1. Read the customer's export policy from its aut-num.
	objs, err := rpsl.ParseAll(strings.NewReader(customerIRR))
	if err != nil {
		log.Fatal(err)
	}
	var exportTerm string
	for _, o := range objs {
		if o.Class() != "aut-num" {
			continue
		}
		policies, malformed := irr.ParsePolicies(o)
		for _, m := range malformed {
			log.Printf("skipping malformed policy %q", m)
		}
		for _, p := range policies {
			if p.Export && p.Peer == 65000 {
				exportTerm = p.Filter
			}
		}
	}
	if exportTerm == "" {
		log.Fatal("customer registered no export policy toward AS65000")
	}
	fmt.Printf("customer exports %q toward AS65000\n", exportTerm)

	// 2. Build the prefix filter the way bgpq4 would.
	filter, err := registry.BuildPrefixFilter(exportTerm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expanded to origins %v (%d prefixes", filter.ASNs, filter.Len())
	if len(filter.MissingSets) > 0 {
		fmt.Printf(", unresolved sets %v", filter.MissingSets)
	}
	fmt.Println("):")
	for _, p := range filter.Prefixes() {
		fmt.Printf("  permit %s\n", p)
	}

	// 3. Apply it to incoming announcements.
	announcements := []struct {
		prefix string
		origin uint32
		note   string
	}{
		{"198.51.100.0/24", 64500, "registered route"},
		{"203.0.113.0/24", 64510, "registered route of a set member"},
		{"203.0.113.0/24", 64666, "hijack: origin not in the set"},
		{"198.51.100.128/25", 64500, "unregistered more-specific (de-aggregation)"},
		{"192.0.2.0/24", 64500, "prefix never registered"},
	}
	fmt.Println("\napplying the filter on the customer session:")
	for _, a := range announcements {
		verdict := "REJECT"
		if filter.Permits(netx.MustParsePrefix(a.prefix), a.origin) {
			verdict = "accept"
		}
		fmt.Printf("  %-20s AS%-6d %-6s (%s)\n", a.prefix, a.origin, verdict, a.note)
	}
}
