// Hijack detection end to end: a victim and a hijacker both announce the
// victim's prefix to a route collector over real BGP-4 sessions (TCP on
// loopback), and the collector classifies every received route against
// the RPKI per RFC 6811 — then the same hijack is propagated through a
// simulated topology to show how ROV-deploying ASes bound its spread
// (the paper's §9.4 effect).
//
// Run with:
//
//	go run ./examples/hijack-detect
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"sync"
	"time"

	"manrsmeter"
	"manrsmeter/internal/astopo"
	"manrsmeter/internal/bgp"
	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
	"manrsmeter/internal/rpki"
)

const (
	victimASN   = 64500
	hijackerASN = 64666
)

func main() {
	log.SetFlags(0)

	// The victim's prefix is ROA-protected.
	rpkiIndex := manrsmeter.NewROVIndex()
	err := rpkiIndex.Add(manrsmeter.Authorization{
		Prefix:    manrsmeter.MustParsePrefix("203.0.113.0/24"),
		ASN:       victimASN,
		MaxLength: 24,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- control plane: BGP sessions into a validating collector ---")
	collectorView(rpkiIndex)

	fmt.Println()
	fmt.Println("--- topology: how far does the hijack spread? ---")
	topologyView()
}

// collectorView runs a collector listening on loopback; the victim and
// the hijacker each establish a session and announce.
func collectorView(rpkiIndex *manrsmeter.ROVIndex) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	// The collector accepts two peers and validates their announcements.
	go func() {
		for i := 0; i < 2; i++ {
			conn, err := ln.Accept()
			if err != nil {
				log.Fatal(err)
			}
			go func(conn net.Conn) {
				defer wg.Done()
				sess, err := bgp.Establish(conn, bgp.Config{ASN: 65000, BGPID: [4]byte{10, 0, 0, 1}}, 5*time.Second)
				if err != nil {
					log.Fatalf("collector: %v", err)
				}
				defer sess.Close()
				update, err := sess.Recv()
				if err != nil {
					log.Fatalf("collector recv: %v", err)
				}
				origin, _ := update.OriginAS()
				for _, p := range update.NLRI {
					status := rpkiIndex.Validate(p, origin)
					verdict := "accepted"
					if status.IsInvalid() {
						verdict = "DROPPED (ROV)"
					}
					fmt.Printf("collector: %s from AS%d (path %v) → RPKI %s → %s\n",
						p, sess.PeerASN(), update.PathASNs(), status, verdict)
				}
			}(conn)
		}
	}()

	announce := func(asn uint32, id byte, path []uint32) {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		sess, err := bgp.Establish(conn, bgp.Config{ASN: asn, BGPID: [4]byte{192, 0, 2, id}}, 5*time.Second)
		if err != nil {
			log.Fatalf("AS%d establish: %v", asn, err)
		}
		defer sess.Close()
		err = sess.SendUpdate(&wire.Update{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: path}},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			NLRI:    []netx.Prefix{netx.MustParsePrefix("203.0.113.0/24")},
		})
		if err != nil {
			log.Fatalf("AS%d send: %v", asn, err)
		}
		// Give the collector a moment to drain before Cease.
		time.Sleep(50 * time.Millisecond)
	}
	announce(victimASN, 1, []uint32{victimASN})
	announce(hijackerASN, 2, []uint32{hijackerASN})
	wg.Wait()
}

// topologyView propagates the hijack through a small AS graph twice:
// without any filtering, then with ROV deployed at the two tier-1s.
func topologyView() {
	g := astopo.NewGraph()
	// Two tier-1s, two mid ISPs, victim and hijacker as stubs.
	for _, asn := range []uint32{10, 20, 100, 200, victimASN, hijackerASN} {
		g.AddAS(asn, fmt.Sprintf("org-%d", asn), "", "US", rpki.ARIN)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(g.SetPeer(10, 20))
	must(g.SetProviderCustomer(10, 100))
	must(g.SetProviderCustomer(20, 200))
	must(g.SetProviderCustomer(100, victimASN))
	must(g.SetProviderCustomer(200, hijackerASN))

	prefix := netx.MustParsePrefix("203.0.113.0/24")
	count := func(filter astopo.ImportFilter) int {
		return g.Propagate(prefix, hijackerASN, filter).Len()
	}
	fmt.Printf("without ROV: hijacked route reaches %d of %d ASes\n",
		count(nil), g.NumASes())
	rov := func(importer, neighbor uint32, _ netx.Prefix, origin uint32) bool {
		deploysROV := importer == 10 || importer == 20
		return !(deploysROV && origin == hijackerASN)
	}
	fmt.Printf("with ROV at the tier-1s: hijacked route reaches %d of %d ASes\n",
		count(rov), g.NumASes())
}
