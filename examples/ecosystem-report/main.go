// Ecosystem report: the paper's §7 characterization in miniature —
// membership growth, geographic distribution, registration completeness
// and RPKI saturation for a generated Internet, printed as one summary.
//
// Run with:
//
//	go run ./examples/ecosystem-report [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"manrsmeter"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 3, "generator seed")
	flag.Parse()

	cfg := manrsmeter.DefaultConfig(*seed)
	cfg.Tier1s, cfg.LargeISPs, cfg.MediumISPs, cfg.SmallASes, cfg.CDNs = 3, 3, 60, 700, 8
	cfg.MANRSSmall, cfg.MANRSMedium, cfg.MANRSLarge, cfg.MANRSCDNs = 70, 20, 3, 4
	world, err := manrsmeter.GenerateWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := manrsmeter.NewPipeline(world)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("synthetic Internet: %d ASes in %d organizations, %d MANRS member ASes\n\n",
		world.Graph.NumASes(), len(world.Graph.Orgs()), world.MANRS.Len())

	fmt.Println(pipe.Fig2Growth().Render())
	fmt.Println(pipe.Fig4ByRIR().Render())
	fmt.Println(pipe.Finding70().Render())

	sat, err := pipe.Fig6Saturation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sat.Render())

	// Headline comparison: Action 4 conformance like Findings 8.3/8.4.
	for _, r := range pipe.Action4() {
		fmt.Printf("%s program: %d/%d member ASes conformant to Action 4 (%d trivially)\n",
			r.Program, r.Conformant, r.Members, r.Trivial)
	}
}
