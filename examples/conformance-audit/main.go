// Conformance audit: the private monthly report MANRS sends operators
// (§1), reconstructed from public-style data. Generates a synthetic
// Internet, picks MANRS member ASes, and prints each one's Action 4
// (prefix origination) and Action 1 (route filtering) scorecard with the
// exact formulas from the paper (§6.4).
//
// Run with:
//
//	go run ./examples/conformance-audit [-seed N] [-asn N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"manrsmeter"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 7, "generator seed")
	asnFlag := flag.Uint("asn", 0, "audit a specific member AS (0 = first five members)")
	flag.Parse()

	cfg := manrsmeter.DefaultConfig(*seed)
	cfg.Tier1s, cfg.LargeISPs, cfg.MediumISPs, cfg.SmallASes, cfg.CDNs = 3, 3, 60, 700, 8
	cfg.MANRSSmall, cfg.MANRSMedium, cfg.MANRSLarge, cfg.MANRSCDNs = 70, 20, 3, 4
	world, err := manrsmeter.GenerateWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := manrsmeter.NewPipeline(world)
	if err != nil {
		log.Fatal(err)
	}
	metrics := pipe.Metrics()

	var targets []manrsmeter.Participant
	if *asnFlag != 0 {
		part, ok := world.MANRS.Lookup(uint32(*asnFlag))
		if !ok {
			log.Fatalf("AS%d is not a MANRS member", *asnFlag)
		}
		targets = []manrsmeter.Participant{part}
	} else {
		members := world.MANRS.Members(pipe.AsOf)
		for _, m := range members {
			if metrics[m.ASN] != nil && metrics[m.ASN].Originated > 0 {
				targets = append(targets, m)
				if len(targets) == 5 {
					break
				}
			}
		}
	}

	for _, part := range targets {
		audit(pipe, metrics[part.ASN], part)
	}
}

func audit(pipe *manrsmeter.Pipeline, m *manrsmeter.ASMetrics, part manrsmeter.Participant) {
	fmt.Printf("=== MANRS conformance report — AS%d (%s program, joined %s) ===\n",
		part.ASN, part.Program, part.Joined.Format("2006-01-02"))
	class := manrsmeter.ClassifySize(pipe.World.Graph.CustomerDegree(part.ASN))
	fmt.Printf("network size: %s (%d direct customers)\n",
		class, pipe.World.Graph.CustomerDegree(part.ASN))

	if m == nil || m.Originated == 0 {
		fmt.Println("Action 4: no originated prefixes visible — trivially conformant")
	} else {
		fmt.Printf("Action 4 — originates %d prefixes:\n", m.Originated)
		fmt.Printf("  OG_RPKIvalid  (Formula 1): %s\n", pct(m.OGRPKIValid()))
		fmt.Printf("  OG_IRRvalid   (Formula 2): %s\n", pct(m.OGIRRValid()))
		fmt.Printf("  OG_conformant (Formula 3): %s", pct(m.OGConformant()))
		threshold := 90.0
		if part.Program == manrsmeter.ProgramCDN {
			threshold = 100.0
		}
		if m.OGConformant() >= threshold {
			fmt.Printf("  → PASS (threshold %.0f%%)\n", threshold)
		} else {
			fmt.Printf("  → FAIL (threshold %.0f%%)\n", threshold)
		}
	}

	if m == nil || m.PropCustomer == 0 {
		fmt.Println("Action 1: no customer announcements propagated — trivially conformant")
	} else {
		fmt.Printf("Action 1 — propagates %d announcements (%d from customers):\n",
			m.Propagated, m.PropCustomer)
		fmt.Printf("  PG_RPKIinv (Formula 4): %s\n", pct(m.PGRPKIInvalid()))
		fmt.Printf("  PG_IRRinv  (Formula 5): %s\n", pct(m.PGIRRInvalid()))
		fmt.Printf("  PG_unc     (Formula 6): %s", pct(m.PGUnconformant()))
		if m.PGUnconformant() == 0 {
			fmt.Println("  → PASS (no unconformant customer routes)")
		} else {
			fmt.Println("  → FAIL (unconformant customer routes propagated)")
		}
	}
	fmt.Println()
}

func pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", v)
}
