// ROV router end to end: a router fetches validated ROA payloads from an
// RTR cache (RFC 8210), peers with a neighbor over BGP-4, and drops
// RPKI-invalid announcements at import — the operational loop behind the
// paper's Action 1. A second act shows an incremental RTR update (a new
// ROA appears) flipping a previously-dropped route to accepted.
//
// Run with:
//
//	go run ./examples/rov-router
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"manrsmeter/internal/bgp"
	"manrsmeter/internal/bgp/wire"
	"manrsmeter/internal/netx"
	"manrsmeter/internal/rov"
	"manrsmeter/internal/rpki"
	"manrsmeter/internal/rpki/rtr"
)

func main() {
	log.SetFlags(0)

	// The RPKI side: a cache serving one VRP (the victim's prefix).
	cache := rtr.NewServer([]rpki.VRP{
		{Prefix: netx.MustParsePrefix("203.0.113.0/24"), ASN: 64500, MaxLength: 24},
	})
	cacheAddr, err := cache.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	snapshot, err := rtr.Fetch(cacheAddr.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router: fetched %d VRPs from RTR cache (serial %d)\n", len(snapshot.VRPs), snapshot.Serial)

	// The BGP side: the neighbor announces three routes; the router
	// validates each against the RTR-fed index.
	routes := []struct {
		prefix netx.Prefix
		origin uint32
	}{
		{netx.MustParsePrefix("203.0.113.0/24"), 64500},  // valid
		{netx.MustParsePrefix("203.0.113.0/24"), 64666},  // hijack
		{netx.MustParsePrefix("198.51.100.0/24"), 64501}, // not found
	}
	decide := func(ix *rov.Index, prefix netx.Prefix, origin uint32) string {
		status := ix.Validate(prefix, origin)
		if status.IsInvalid() {
			return fmt.Sprintf("%s → DROP", status)
		}
		return fmt.Sprintf("%s → accept", status)
	}

	runSession(routes, snapshot, decide)

	// Act two: the prefix holder authorizes a second origin (say, an
	// anycast deployment through AS64666). The cache refreshes, the
	// router applies the incremental delta, and the previously-dropped
	// announcement becomes Valid.
	cache.SetVRPs([]rpki.VRP{
		{Prefix: netx.MustParsePrefix("203.0.113.0/24"), ASN: 64500, MaxLength: 24},
		{Prefix: netx.MustParsePrefix("203.0.113.0/24"), ASN: 64666, MaxLength: 24},
	})
	updated, err := rtr.Update(cacheAddr.String(), snapshot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrouter: incremental RTR update → serial %d, %d VRPs\n", updated.Serial, len(updated.VRPs))
	ix := mustIndex(updated.VRPs)
	fmt.Printf("router: 203.0.113.0/24 from AS64666 now: %s\n",
		decide(ix, netx.MustParsePrefix("203.0.113.0/24"), 64666))
}

func mustIndex(vrps []rpki.VRP) *rov.Index {
	ix, err := rpki.BuildIndex(vrps)
	if err != nil {
		log.Fatal(err)
	}
	return ix
}

// runSession announces the routes over a real BGP session and prints the
// router's per-route ROV decision.
func runSession(routes []struct {
	prefix netx.Prefix
	origin uint32
}, snapshot *rtr.FetchResult, decide func(*rov.Index, netx.Prefix, uint32) string) {
	ix := mustIndex(snapshot.VRPs)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	done := make(chan struct{})
	go func() { // the router side
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		sess, err := bgp.Establish(conn, bgp.Config{ASN: 65000, BGPID: [4]byte{10, 0, 0, 1}}, 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		defer sess.Close()
		for range routes {
			u, err := sess.Recv()
			if err != nil {
				log.Fatal(err)
			}
			origin, _ := u.OriginAS()
			for _, p := range u.NLRI {
				fmt.Printf("router: %s from AS%d: %s\n", p, origin, decide(ix, p, origin))
			}
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	neighbor, err := bgp.Establish(conn, bgp.Config{ASN: 64999, BGPID: [4]byte{10, 0, 0, 2}}, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer neighbor.Close()
	for _, r := range routes {
		err := neighbor.SendUpdate(&wire.Update{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.ASPathSegment{{Type: wire.ASSequence, ASNs: []uint32{64999, r.origin}}},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			NLRI:    []netx.Prefix{r.prefix},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	<-done
}
