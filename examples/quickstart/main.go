// Quickstart: validate BGP announcements against the RPKI and the IRR
// the way the paper classifies prefix-origins (§6.1), then check MANRS
// conformance of each pair.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"manrsmeter"
)

func main() {
	// Authoritative state: AS64500 holds 192.0.2.0/24 (ROA up to /24) and
	// 198.51.100.0/24 is registered in the IRR only. 203.0.113.0/24 has an
	// AS0 ROA ("do not route").
	rpkiIndex := manrsmeter.NewROVIndex()
	irrIndex := manrsmeter.NewROVIndex()
	mustAdd := func(ix *manrsmeter.ROVIndex, prefix string, asn uint32, maxLen int) {
		err := ix.Add(manrsmeter.Authorization{
			Prefix:    manrsmeter.MustParsePrefix(prefix),
			ASN:       asn,
			MaxLength: maxLen,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	mustAdd(rpkiIndex, "192.0.2.0/24", 64500, 24)
	mustAdd(rpkiIndex, "203.0.113.0/24", 0, 24) // AS0 ROA
	mustAdd(irrIndex, "198.51.100.0/24", 64500, 24)

	// Announcements seen in BGP.
	announcements := []struct {
		prefix string
		origin uint32
		note   string
	}{
		{"192.0.2.0/24", 64500, "legitimate, ROA matches"},
		{"192.0.2.0/25", 64500, "too specific for the ROA"},
		{"192.0.2.0/24", 64666, "origin hijack"},
		{"198.51.100.0/24", 64500, "IRR-registered only"},
		{"198.51.100.0/25", 64500, "more specific than the route object"},
		{"203.0.113.0/24", 64500, "covered by an AS0 ROA"},
		{"10.0.0.0/8", 64500, "registered nowhere"},
	}

	fmt.Printf("%-18s %-8s %-14s %-14s %-12s %s\n",
		"prefix", "origin", "RPKI", "IRR", "MANRS", "note")
	for _, a := range announcements {
		prefix := manrsmeter.MustParsePrefix(a.prefix)
		rpkiStatus := rpkiIndex.Validate(prefix, a.origin)
		irrStatus := irrIndex.Validate(prefix, a.origin)
		conf := "—"
		switch {
		case manrsmeter.Conformant(rpkiStatus, irrStatus):
			conf = "conformant"
		case manrsmeter.Unconformant(rpkiStatus, irrStatus):
			conf = "UNCONFORMANT"
		}
		fmt.Printf("%-18s AS%-6d %-14s %-14s %-12s %s\n",
			a.prefix, a.origin, rpkiStatus, irrStatus, conf, a.note)
	}
}
