package manrsmeter

import (
	"bytes"
	"strings"
	"testing"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Tier1s, cfg.LargeISPs, cfg.MediumISPs, cfg.SmallASes, cfg.CDNs = 3, 3, 50, 500, 6
	cfg.MANRSSmall, cfg.MANRSMedium, cfg.MANRSLarge, cfg.MANRSCDNs = 50, 15, 2, 3
	return cfg
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	// The README quickstart, verbatim in spirit.
	ix := NewROVIndex()
	err := ix.Add(Authorization{Prefix: MustParsePrefix("192.0.2.0/24"), ASN: 64500, MaxLength: 24})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Validate(MustParsePrefix("192.0.2.0/24"), 64500); got != StatusValid {
		t.Errorf("status = %v", got)
	}
	if got := ix.Validate(MustParsePrefix("192.0.2.0/24"), 64666); got != StatusInvalidASN {
		t.Errorf("status = %v", got)
	}
	if !Conformant(StatusValid, StatusNotFound) {
		t.Error("RPKI-valid must be conformant")
	}
	if !Unconformant(StatusInvalidASN, StatusNotFound) {
		t.Error("RPKI-invalid-only must be unconformant")
	}
	if ClassifySize(200) != Large || ClassifySize(1) != Small {
		t.Error("size classification")
	}
}

func TestConformanceClassification(t *testing.T) {
	// The full §6.4 truth table over the four defined statuses: a pair
	// is conformant on RPKI Valid, IRR Valid, or IRR Invalid-length
	// (IRR has no max-length attribute); unconformant on RPKI Invalid
	// or RPKI-unregistered with a wrong-origin IRR object; pairs
	// registered nowhere are neither.
	cases := []struct {
		rpki, irr          Status
		conform, unconform bool
	}{
		{StatusNotFound, StatusNotFound, false, false},
		{StatusNotFound, StatusValid, true, false},
		{StatusNotFound, StatusInvalidASN, false, true},
		{StatusNotFound, StatusInvalidLength, true, false},
		{StatusValid, StatusNotFound, true, false},
		{StatusValid, StatusValid, true, false},
		{StatusValid, StatusInvalidASN, true, false},
		{StatusValid, StatusInvalidLength, true, false},
		{StatusInvalidASN, StatusNotFound, false, true},
		{StatusInvalidASN, StatusValid, true, false},
		{StatusInvalidASN, StatusInvalidASN, false, true},
		{StatusInvalidASN, StatusInvalidLength, true, false},
		{StatusInvalidLength, StatusNotFound, false, true},
		{StatusInvalidLength, StatusValid, true, false},
		{StatusInvalidLength, StatusInvalidASN, false, true},
		{StatusInvalidLength, StatusInvalidLength, true, false},
	}
	for _, tc := range cases {
		if got := Conformant(tc.rpki, tc.irr); got != tc.conform {
			t.Errorf("Conformant(%v, %v) = %v, want %v", tc.rpki, tc.irr, got, tc.conform)
		}
		if got := Unconformant(tc.rpki, tc.irr); got != tc.unconform {
			t.Errorf("Unconformant(%v, %v) = %v, want %v", tc.rpki, tc.irr, got, tc.unconform)
		}
		if Conformant(tc.rpki, tc.irr) && Unconformant(tc.rpki, tc.irr) {
			t.Errorf("(%v, %v) both conformant and unconformant", tc.rpki, tc.irr)
		}
	}
	// Statuses outside the defined enum must classify as neither, not
	// panic or default to a verdict.
	if Conformant(Status(7), Status(9)) {
		t.Error("unknown statuses classified conformant")
	}
	if Unconformant(Status(7), Status(9)) {
		t.Error("unknown statuses classified unconformant")
	}
}

func TestClassifySizeBoundaries(t *testing.T) {
	// Class edges from the paper: small ≤ 2 < medium ≤ 180 < large.
	// Zero customer degree (a stub AS) is small, as is a negative
	// degree from a defensive caller.
	cases := []struct {
		degree int
		want   SizeClass
	}{
		{-1, Small}, {0, Small}, {1, Small}, {2, Small},
		{3, Medium}, {100, Medium}, {180, Medium},
		{181, Large}, {10000, Large},
	}
	for _, tc := range cases {
		if got := ClassifySize(tc.degree); got != tc.want {
			t.Errorf("ClassifySize(%d) = %v, want %v", tc.degree, got, tc.want)
		}
	}
}

func TestRunReportEndToEnd(t *testing.T) {
	world, err := GenerateWorld(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = RunReport(&buf, world, ReportOptions{StabilityWeeks: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every table and figure of the evaluation must appear.
	for _, want := range []string{
		"Figure 2", "Figure 4a", "Figure 4b", "Finding 7.0",
		"Figure 5a", "Figure 5b", "Action 4", "Table 1",
		"Finding 8.7", "Figure 6", "Figure 7a", "Figure 7b",
		"Figure 8", "Table 2", "Figure 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunReportSkipStability(t *testing.T) {
	world, err := GenerateWorld(smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunReport(&buf, world, ReportOptions{SkipStability: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Error("skip note missing")
	}
}

func TestComputeMetricsThroughFacade(t *testing.T) {
	world, err := GenerateWorld(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := world.DatasetAt(world.Date(world.Config.EndYear))
	if err != nil {
		t.Fatal(err)
	}
	ms := ComputeMetrics(ds)
	if len(ms) == 0 {
		t.Fatal("no metrics")
	}
	origTotal := 0
	for _, m := range ms {
		origTotal += m.Originated
	}
	if origTotal != len(ds.PrefixOrigins) {
		t.Errorf("metrics cover %d originations, dataset has %d", origTotal, len(ds.PrefixOrigins))
	}
}
