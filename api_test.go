package manrsmeter

import (
	"bytes"
	"strings"
	"testing"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Tier1s, cfg.LargeISPs, cfg.MediumISPs, cfg.SmallASes, cfg.CDNs = 3, 3, 50, 500, 6
	cfg.MANRSSmall, cfg.MANRSMedium, cfg.MANRSLarge, cfg.MANRSCDNs = 50, 15, 2, 3
	return cfg
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	// The README quickstart, verbatim in spirit.
	ix := NewROVIndex()
	err := ix.Add(Authorization{Prefix: MustParsePrefix("192.0.2.0/24"), ASN: 64500, MaxLength: 24})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Validate(MustParsePrefix("192.0.2.0/24"), 64500); got != StatusValid {
		t.Errorf("status = %v", got)
	}
	if got := ix.Validate(MustParsePrefix("192.0.2.0/24"), 64666); got != StatusInvalidASN {
		t.Errorf("status = %v", got)
	}
	if !Conformant(StatusValid, StatusNotFound) {
		t.Error("RPKI-valid must be conformant")
	}
	if !Unconformant(StatusInvalidASN, StatusNotFound) {
		t.Error("RPKI-invalid-only must be unconformant")
	}
	if ClassifySize(200) != Large || ClassifySize(1) != Small {
		t.Error("size classification")
	}
}

func TestRunReportEndToEnd(t *testing.T) {
	world, err := GenerateWorld(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = RunReport(&buf, world, ReportOptions{StabilityWeeks: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every table and figure of the evaluation must appear.
	for _, want := range []string{
		"Figure 2", "Figure 4a", "Figure 4b", "Finding 7.0",
		"Figure 5a", "Figure 5b", "Action 4", "Table 1",
		"Finding 8.7", "Figure 6", "Figure 7a", "Figure 7b",
		"Figure 8", "Table 2", "Figure 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunReportSkipStability(t *testing.T) {
	world, err := GenerateWorld(smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunReport(&buf, world, ReportOptions{SkipStability: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Error("skip note missing")
	}
}

func TestComputeMetricsThroughFacade(t *testing.T) {
	world, err := GenerateWorld(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := world.DatasetAt(world.Date(world.Config.EndYear))
	if err != nil {
		t.Fatal(err)
	}
	ms := ComputeMetrics(ds)
	if len(ms) == 0 {
		t.Fatal("no metrics")
	}
	origTotal := 0
	for _, m := range ms {
		origTotal += m.Originated
	}
	if origTotal != len(ds.PrefixOrigins) {
		t.Errorf("metrics cover %d originations, dataset has %d", origTotal, len(ds.PrefixOrigins))
	}
}
