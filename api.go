// Package manrsmeter reproduces the measurement pipeline of "Mind Your
// MANRS: Measuring the MANRS Ecosystem" (Du et al., IMC 2022) on a
// simulated Internet, and exposes the building blocks — RFC 6811 route
// origin validation, IRR/RPSL parsing and validation, an RPKI model with
// real signatures, BGP-4 wire codec and speaker, MRT archives, AS-level
// topology with valley-free propagation, AS hegemony, and the MANRS
// conformance engine — as a reusable library.
//
// Quick start:
//
//	world, err := manrsmeter.GenerateWorld(manrsmeter.DefaultConfig(42))
//	pipe, err := manrsmeter.NewPipeline(world)
//	fmt.Print(pipe.Fig5aRPKIOrigination().Render())
//
// or run every experiment at once:
//
//	manrsmeter.RunReport(os.Stdout, world, manrsmeter.ReportOptions{})
//
// Long-running entry points have context-aware variants (RunReportCtx,
// NewPipelineCtx) that honor cancellation and deadlines, and RunReport
// supports a degraded mode (ReportOptions.ContinueOnError) that renders
// diagnostics for failed sections instead of aborting — see DESIGN.md,
// "Failure semantics".
package manrsmeter

import (
	"context"
	"time"

	"manrsmeter/internal/core"
	"manrsmeter/internal/ihr"
	"manrsmeter/internal/manrs"
	"manrsmeter/internal/netx"
	"manrsmeter/internal/rov"
	"manrsmeter/internal/rpki"
	"manrsmeter/internal/scenario"
	"manrsmeter/internal/serve"
	"manrsmeter/internal/synth"
)

// Prefix is a validated IP prefix (IPv4 or IPv6).
type Prefix = netx.Prefix

// ParsePrefix parses CIDR notation into a Prefix.
func ParsePrefix(s string) (Prefix, error) { return netx.ParsePrefix(s) }

// MustParsePrefix is ParsePrefix that panics on error; use it only for
// statically known inputs (tests, examples, table literals).
func MustParsePrefix(s string) Prefix { return netx.MustParsePrefix(s) }

// Route origin validation vocabulary (RFC 6811 extended with the paper's
// invalid-ASN / invalid-length split).
type (
	// Status is a validation outcome.
	Status = rov.Status
	// Authorization is a (prefix, origin, max length) authorization: a
	// VRP or an IRR route object.
	Authorization = rov.Authorization
	// ROVIndex answers origin-validation queries.
	ROVIndex = rov.Index
)

// Validation statuses.
const (
	StatusNotFound      = rov.NotFound
	StatusValid         = rov.Valid
	StatusInvalidASN    = rov.InvalidASN
	StatusInvalidLength = rov.InvalidLength
)

// NewROVIndex returns an empty origin-validation index.
func NewROVIndex() *ROVIndex { return rov.NewIndex() }

// RPKI substrate.
type (
	// VRP is a validated ROA payload.
	VRP = rpki.VRP
	// RIR identifies a Regional Internet Registry.
	RIR = rpki.RIR
)

// MANRS conformance engine.
type (
	// Program is a MANRS program (ISP or CDN).
	Program = manrs.Program
	// Participant is a registered MANRS AS.
	Participant = manrs.Participant
	// MANRSRegistry is the participant list with join dates.
	MANRSRegistry = manrs.Registry
	// ASMetrics aggregates one AS's origination and propagation behavior.
	ASMetrics = manrs.ASMetrics
	// SizeClass buckets ASes by customer degree.
	SizeClass = manrs.SizeClass
)

// Programs and size classes.
const (
	ProgramISP = manrs.ProgramISP
	ProgramCDN = manrs.ProgramCDN

	Small  = manrs.Small
	Medium = manrs.Medium
	Large  = manrs.Large
)

// NewMANRSRegistry returns an empty participant registry.
func NewMANRSRegistry() *MANRSRegistry { return manrs.NewRegistry() }

// ClassifySize maps a customer degree to its size class.
func ClassifySize(customerDegree int) SizeClass { return manrs.ClassifySize(customerDegree) }

// Conformant reports whether a prefix-origin with the given RPKI and IRR
// statuses satisfies MANRS Actions 1/4 (§6.4).
func Conformant(rpkiStatus, irrStatus Status) bool { return manrs.Conformant(rpkiStatus, irrStatus) }

// Unconformant reports whether a prefix-origin is MANRS-unconformant.
func Unconformant(rpkiStatus, irrStatus Status) bool {
	return manrs.Unconformant(rpkiStatus, irrStatus)
}

// Simulation and pipeline.
type (
	// Config parameterizes the synthetic Internet generator.
	Config = synth.Config
	// World is a generated ecosystem.
	World = synth.World
	// Pipeline runs the paper's experiments over a World.
	Pipeline = core.Pipeline
	// Cohort is one of the six comparison groups (size class × membership).
	Cohort = core.Cohort
	// PipelineOptions tunes pipeline construction (worker-pool sizing).
	PipelineOptions = core.Options
	// Dataset is the IHR-style view: prefix-origin and transit datasets.
	Dataset = ihr.Dataset
	// FilterPolicy is one AS's route filtering behavior.
	FilterPolicy = ihr.Policy
)

// DefaultConfig returns the generator defaults calibrated to the paper's
// May 2022 measurements.
func DefaultConfig(seed int64) Config { return synth.NewConfig(seed) }

// LargeConfig returns the internet-scale preset: ~75k ASes announcing
// ~1M prefixes, generated through the compact arena layout (one flat
// prefix slice with per-AS index ranges, aggregate ROAs, compact IRR
// objects). Cohort behavioral rates match DefaultConfig, so the paper's
// findings reproduce at scale.
func LargeConfig(seed int64) Config { return synth.NewLargeConfig(seed) }

// GenerateWorld builds a synthetic Internet from cfg.
func GenerateWorld(cfg Config) (*World, error) { return synth.Generate(cfg) }

// NewPipeline prepares the experiment pipeline (builds the headline
// dataset and per-AS metrics).
func NewPipeline(w *World) (*Pipeline, error) { return core.NewPipeline(w) }

// NewPipelineWith is NewPipeline with explicit options, e.g. a bounded
// worker pool:
//
//	pipe, err := manrsmeter.NewPipelineWith(world, manrsmeter.PipelineOptions{Workers: 4})
func NewPipelineWith(w *World, opts PipelineOptions) (*Pipeline, error) {
	return core.NewPipelineWith(w, opts)
}

// NewPipelineCtx is NewPipelineWith with cancellation threaded through
// the headline dataset build: a canceled context aborts construction
// with the cancellation cause instead of finishing the build.
func NewPipelineCtx(ctx context.Context, w *World, opts PipelineOptions) (*Pipeline, error) {
	return core.NewPipelineCtx(ctx, w, opts)
}

// ComputeMetrics aggregates a dataset into per-AS metrics (Formulas 1–6).
func ComputeMetrics(ds *Dataset) map[uint32]*ASMetrics { return manrs.ComputeMetrics(ds) }

// Serving layer: the versioned snapshot store and HTTP/JSON query
// server behind cmd/manrsd — see DESIGN.md, "Serving layer".
type (
	// SnapshotStore builds, versions, and publishes date-keyed dataset
	// snapshots with singleflight-coalesced builds and atomic swaps.
	SnapshotStore = serve.Store
	// SnapshotStoreOptions tunes a SnapshotStore.
	SnapshotStoreOptions = serve.StoreOptions
	// QueryServer answers MANRS conformance queries over HTTP/JSON with
	// admission control, a version-keyed response cache, and ETags.
	QueryServer = serve.Server
	// QueryServerOptions tunes a QueryServer.
	QueryServerOptions = serve.Options
)

// NewSnapshotStore returns a snapshot store over w. The world is
// shared and read-only; any number of stores and pipelines may run
// over one world.
func NewSnapshotStore(w *World, opts SnapshotStoreOptions) *SnapshotStore {
	return serve.NewStore(w, opts)
}

// NewQueryServer returns the HTTP query server over store:
//
//	store := manrsmeter.NewSnapshotStore(world, manrsmeter.SnapshotStoreOptions{})
//	srv := manrsmeter.NewQueryServer(store, manrsmeter.QueryServerOptions{})
//	addr, err := srv.Listen("127.0.0.1:0")
func NewQueryServer(store *SnapshotStore, opts QueryServerOptions) *QueryServer {
	return serve.NewServer(store, opts)
}

// Adversarial scenario engine: deterministic data-plane fault
// injection with measured graceful degradation — see DESIGN.md,
// "Adversarial scenarios".
type (
	// Scenario is an ordered adversarial event list (hijack ROAs,
	// expired chains, relying-party failure, anchor pairs, ROA delay).
	Scenario = scenario.Scenario
	// ScenarioResult compares a degraded fork against its baseline.
	ScenarioResult = scenario.Result
	// ScenarioOptions parameterize RunScenario.
	ScenarioOptions = scenario.Options
)

// ScenarioNames lists the builtin adversarial scenarios.
func ScenarioNames() []string { return scenario.Names() }

// BuiltinScenario derives the named builtin scenario from w as of
// date (zero date: the world's headline date).
func BuiltinScenario(name string, w *World, date time.Time) (*Scenario, error) {
	if date.IsZero() {
		date = w.Date(w.Config.EndYear)
	}
	return scenario.Builtin(name, w, date)
}

// DecodeScenario parses a scenario from its text or JSON encoding.
func DecodeScenario(data []byte) (*Scenario, error) { return scenario.Decode(data) }

// RunScenario applies sc to a copy-on-write fork of w and measures the
// degradation against the untouched baseline. The base world is never
// mutated and may keep serving queries concurrently.
func RunScenario(ctx context.Context, w *World, sc *Scenario, opts ScenarioOptions) (*ScenarioResult, error) {
	return scenario.Run(ctx, w, sc, opts)
}

// ApplyScenario forks w and applies sc without measuring, returning
// the mutated fork (what synthgen -scenario writes archives from).
func ApplyScenario(w *World, sc *Scenario, date time.Time) (*World, error) {
	if date.IsZero() {
		date = w.Date(w.Config.EndYear)
	}
	return scenario.Apply(w, sc, date)
}
