module manrsmeter

go 1.22
