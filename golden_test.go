package manrsmeter

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"manrsmeter/internal/astopo"
	"manrsmeter/internal/ihr"
)

// The golden files pin the exact bytes produced by the seed-scale
// pipeline before the compact-layout refactor. Any change to
// propagation order, route preference, status classification, or
// report rendering shows up here as a byte diff. Regenerate only for
// an intentional output change:
//
//	UPDATE_GOLDEN=1 go test -run 'Golden' .
const (
	goldenReportFile      = "testdata/golden_report_seed8.txt"
	goldenPropagateDigest = "testdata/golden_propagate_digest.txt"
)

func updateGolden() bool { return os.Getenv("UPDATE_GOLDEN") != "" }

func writeGolden(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("golden updated: %s (%d bytes)", path, len(data))
}

// TestReportGoldenBytes pins the full seed-scale report against the
// committed pre-refactor bytes. TestRunReportByteIdentical only proves
// internal consistency (same bytes across worker counts); this test
// proves the refactor did not move the output at all.
func TestReportGoldenBytes(t *testing.T) {
	world, err := GenerateWorld(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunReport(&buf, world, ReportOptions{StabilityWeeks: 3, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	if updateGolden() {
		writeGolden(t, goldenReportFile, got)
		return
	}
	want, err := os.ReadFile(goldenReportFile)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report bytes diverged from pre-refactor golden: got %d bytes, want %d bytes; first difference at offset %d",
			len(got), len(want), firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// propagationDigest folds every route decision from every tree into one
// fnv64a hash: per reached AS the route class, next hop, and path
// length, walked in the graph's sorted ASN order.
func propagationDigest(g *astopo.Graph, trees []*astopo.RouteTree) uint64 {
	asns := g.ASNs()
	h := fnv.New64a()
	for _, tr := range trees {
		fmt.Fprintf(h, "T %s %d %d\n", tr.Prefix, tr.Origin, tr.Len())
		for _, asn := range asns {
			info, ok := tr.Info(asn)
			if !ok {
				continue
			}
			fmt.Fprintf(h, "%d %d %d %d\n", asn, info.Class, info.NextHop, info.PathLen)
		}
	}
	return h.Sum64()
}

// TestPropagateGoldenDigest is the CSR equivalence gate: Propagate over
// the seed-scale world must reproduce the pre-refactor RouteTree
// results bit-for-bit — same reachable set, same route class, next hop,
// and path length everywhere — across worker counts, with and without
// an import filter.
func TestPropagateGoldenDigest(t *testing.T) {
	world, err := GenerateWorld(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	g := world.Graph
	rpkiIx, irrIx, err := world.IndexesAt(world.Date(world.Config.EndYear))
	if err != nil {
		t.Fatal(err)
	}

	origs := g.Originations()
	reqs := make([]astopo.PropagateRequest, 0, 2*len(origs))
	for _, og := range origs {
		reqs = append(reqs, astopo.PropagateRequest{Prefix: og.Prefix, Origin: og.Origin})
	}
	// The same set again behind the world's own ROV/IRR drop policies,
	// to pin the filtered code path too.
	filterFor := ihr.PolicyFilter(g, world.Policies, rpkiIx, irrIx)
	for _, og := range origs {
		reqs = append(reqs, astopo.PropagateRequest{
			Prefix: og.Prefix,
			Origin: og.Origin,
			Filter: filterFor(og.Prefix, og.Origin),
		})
	}

	digests := make(map[int]uint64)
	for _, workers := range []int{1, 3, 8} {
		trees := g.PropagateBatch(reqs, workers)
		digests[workers] = propagationDigest(g, trees)
	}
	if digests[3] != digests[1] || digests[8] != digests[1] {
		t.Fatalf("propagation digest varies with worker count: %v", digests)
	}

	got := fmt.Sprintf("%016x\n", digests[1])
	if updateGolden() {
		writeGolden(t, goldenPropagateDigest, []byte(got))
		return
	}
	want, err := os.ReadFile(goldenPropagateDigest)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("propagation digest diverged from pre-refactor golden: got %s want %s", got, want)
	}
}
