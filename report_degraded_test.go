package manrsmeter

import (
	"bytes"
	"context"
	"errors"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"
)

// wallRe normalizes the run-varying wall times in health trailers so
// degraded reports can be compared byte-for-byte across worker counts.
var wallRe = regexp.MustCompile(`wall=[^ \n]+`)

func normalizeHealth(s string) string { return wallRe.ReplaceAllString(s, "wall=X") }

// degradedPipe builds one pipeline reused by the degraded-mode tests
// (pipeline construction dominates their cost).
func degradedPipe(t *testing.T) *Pipeline {
	t.Helper()
	world, err := GenerateWorld(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(world)
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

// faultHook forces Fig6Saturation to panic and Fig9Preference to stall
// until its context dies — the two failure modes the watchdog and the
// panic isolation exist for.
func faultHook(name string, run sectionRun) sectionRun {
	switch name {
	case "Fig6Saturation":
		return func(context.Context) (string, error) { panic("injected section panic") }
	case "Fig9Preference":
		return func(ctx context.Context) (string, error) {
			<-ctx.Done()
			return "", ctx.Err()
		}
	}
	return run
}

// TestRunReportDegradedContinueOnError is the acceptance scenario: one
// section panics, another runs past its watchdog, and the degraded run
// still completes — diagnostic stanzas in paper order, health trailer
// at the end, nil error — with identical bytes across worker counts.
func TestRunReportDegradedContinueOnError(t *testing.T) {
	pipe := degradedPipe(t)
	render := func(workers int) string {
		var buf bytes.Buffer
		err := RunReportWithPipeline(&buf, pipe, ReportOptions{
			SkipStability:   true,
			SkipExtensions:  true,
			Workers:         workers,
			SectionTimeout:  3 * time.Second,
			ContinueOnError: true,
			sectionHook:     faultHook,
		})
		if err != nil {
			t.Fatalf("workers=%d: degraded run errored: %v", workers, err)
		}
		return buf.String()
	}

	out := render(2)
	panicAt := strings.Index(out, "!! section Fig6Saturation unavailable (panicked)")
	timeoutAt := strings.Index(out, "!! section Fig9Preference unavailable (timed-out)")
	if panicAt < 0 || timeoutAt < 0 {
		t.Fatalf("missing diagnostic stanzas:\n%s", out)
	}
	if panicAt > timeoutAt {
		t.Error("stanzas out of paper order: Fig6Saturation must precede Fig9Preference")
	}
	if !strings.Contains(out, "injected section panic") {
		t.Error("panic value missing from the diagnostic stanza")
	}
	if !strings.Contains(out, "timed out after 3s") {
		t.Error("watchdog timeout missing from the diagnostic stanza")
	}
	trailerAt := strings.Index(out, "health: sections=17 ok=15 failed=0 panicked=1 timed-out=1 canceled=0")
	if trailerAt < 0 {
		t.Fatalf("health trailer summary missing or wrong:\n%s", out)
	}
	if trailerAt < timeoutAt {
		t.Error("health trailer must come after every section slot")
	}
	if !strings.Contains(out, `health: section=Fig6Saturation status=panicked`) ||
		!strings.Contains(out, `health: section=Fig9Preference status=timed-out`) {
		t.Error("per-section health lines missing")
	}
	// Healthy sections still render: the report is degraded, not empty.
	if !strings.Contains(out, "health: section=Fig2Growth status=ok") {
		t.Error("healthy section missing from health trailer")
	}

	if normalizeHealth(render(8)) != normalizeHealth(out) {
		t.Error("degraded report differs across worker counts (after wall-time normalization)")
	}
}

// TestRunReportStrictLowestIndexError: the same faults without
// ContinueOnError abort the report with the lowest-index section's
// error — the panic in Fig6Saturation, not the later timeout.
func TestRunReportStrictLowestIndexError(t *testing.T) {
	pipe := degradedPipe(t)
	var buf bytes.Buffer
	err := RunReportWithPipeline(&buf, pipe, ReportOptions{
		SkipStability:  true,
		SkipExtensions: true,
		Workers:        4,
		SectionTimeout: 3 * time.Second,
		sectionHook:    faultHook,
	})
	if err == nil {
		t.Fatal("strict run with a panicking section returned nil")
	}
	if !strings.Contains(err.Error(), "section Fig6Saturation") || !strings.Contains(err.Error(), "injected section panic") {
		t.Errorf("err = %v, want the Fig6Saturation panic (lowest failing index)", err)
	}
	if buf.Len() != 0 {
		t.Error("strict mode wrote partial report output before failing")
	}
}

// TestRunReportSectionTimeoutChaos drives the watchdog across every
// section at once: each section stalls until canceled, so all either
// time out or are skipped, and the runner must still emit a complete
// degraded report without leaking goroutines. This is the
// section-timeout chaos gate run under -race by scripts/check.sh.
func TestRunReportSectionTimeoutChaos(t *testing.T) {
	pipe := degradedPipe(t)
	before := runtime.NumGoroutine()
	var buf bytes.Buffer
	err := RunReportWithPipeline(&buf, pipe, ReportOptions{
		SkipStability:   true,
		SkipExtensions:  true,
		Workers:         4,
		SectionTimeout:  50 * time.Millisecond,
		ContinueOnError: true,
		sectionHook: func(name string, run sectionRun) sectionRun {
			return func(ctx context.Context) (string, error) {
				<-ctx.Done()
				return "", ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatalf("chaos run errored: %v", err)
	}
	out := buf.String()
	if got := strings.Count(out, "status=timed-out"); got != 17 {
		t.Errorf("timed-out sections = %d, want all 17:\n%s", got, out)
	}
	if !strings.Contains(out, "health: sections=17 ok=0") {
		t.Errorf("health summary missing:\n%s", out)
	}
	waitForGoroutineBaseline(t, before)
}

// TestRunReportCancelDrains sends cancellation (the SIGINT path) into a
// running report and requires a prompt, clean unwind: a canceled error,
// completed sections flushed under ContinueOnError, and the goroutine
// count back at baseline.
func TestRunReportCancelDrains(t *testing.T) {
	pipe := degradedPipe(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var buf bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- RunReportWithPipelineCtx(ctx, &buf, pipe, ReportOptions{
			SkipStability:   true,
			SkipExtensions:  true,
			Workers:         2,
			ContinueOnError: true,
			sectionHook: func(name string, run sectionRun) sectionRun {
				if name != "Fig9Preference" {
					return run
				}
				return func(ctx context.Context) (string, error) {
					close(started)
					<-ctx.Done()
					return "", ctx.Err()
				}
			},
		})
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("report did not unwind within the drain bound after cancellation")
	}
	if !strings.Contains(buf.String(), "health: sections=17") {
		t.Error("interrupted ContinueOnError run lost its health trailer")
	}
	waitForGoroutineBaseline(t, before)
}

func waitForGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at baseline, %d now", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
