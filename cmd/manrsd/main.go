// Command manrsd serves MANRS conformance answers over HTTP/JSON: per-AS
// Action 1 / Action 4 conformance, per-prefix origination and ROA/IRR
// state, ecosystem aggregates, and rendered report sections, computed
// from versioned snapshots of a synthetic Internet and published with
// atomic swaps.
//
// Usage:
//
//	manrsd [-seed N] [-scale small|full|large] [-listen 127.0.0.1:8180]
//	       [-workers N] [-max-inflight N] [-request-timeout D]
//	       [-build-timeout D] [-refresh D] [-no-warm] [-drain D]
//	       [-admin 127.0.0.1:9180] [-data-dir DIR] [-snap-budget BYTES]
//	       [-access-log-sample N] [-trace-cap N]
//
// With -data-dir DIR every successfully built snapshot is archived to
// DIR (checksummed, written atomically) and a restarted daemon
// warm-starts from the last known-good archive: the first query is
// answered from disk in milliseconds while the fresh build proceeds in
// the background. Corrupt archives are detected by checksum, moved
// aside, and never served; -snap-budget bounds the directory size.
//
// Endpoints (all /v1 routes accept ?date=YYYY-MM-DD and return strong
// ETags; requests beyond -max-inflight are shed with 503 + Retry-After):
//
//	GET /v1/as/{asn}/conformance   per-AS MANRS conformance detail
//	GET /v1/prefix/{prefix}        originations + covering ROAs/IRR routes
//	GET /v1/stats                  ecosystem aggregates, RPKI saturation
//	GET /v1/report                 the renderable report sections
//	GET /v1/report/{section}       one rendered section
//	GET /v1/scenario               the builtin adversarial scenarios
//	GET /v1/scenario/{name}        degradation vs baseline for one scenario
//	GET /healthz                   liveness (200 even while warming)
//
// The /v1/scenario routes run the adversarial scenario engine against
// a copy-on-write fork of the served snapshot: relying-party failure,
// hijack ROAs, expired chains, anchor-pair experiments, ROA delay. A
// degraded ecosystem is a successful answer — rp-failure returns 200
// with health.degraded=true, never a 5xx.
//
// Every request is correlated end to end: a W3C traceparent header is
// honored (or minted) per request, echoed in the response, recorded on
// the request span, and written to the sampled key=value access log on
// stderr (-access-log-sample N logs 1-in-N; server errors always log).
// -trace-cap bounds the retained span tree, so tracing stays on in
// long-running daemons.
//
// SIGINT/SIGTERM drain in-flight requests for up to -drain before
// force-closing; a second signal kills the process via the restored
// default handler. With -admin ADDR the observability endpoint serves
// /metrics (request latency per route, RED summaries, runtime gauges,
// GC pause quantiles), /healthz (snapshot publication state),
// /debug/pprof/, /debug/trace (the span tree) and /debug/latency
// (live p50/p90/p99/p99.9 per route).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"manrsmeter"
	"manrsmeter/internal/durable"
	"manrsmeter/internal/obsv"
	"manrsmeter/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manrsd: ")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.String("scale", "full", "world scale: small | full | large (internet-scale, ~75k ASes / ~1M prefixes)")
	listen := flag.String("listen", "127.0.0.1:8180", "listen address for the query API")
	workers := flag.Int("workers", 0, "worker goroutines per snapshot build (0 = one per CPU)")
	maxInFlight := flag.Int("max-inflight", serve.DefaultMaxInFlight, "admission limit on concurrently served requests; arrivals beyond it are shed with 503")
	requestTimeout := flag.Duration("request-timeout", serve.DefaultRequestTimeout, "end-to-end deadline per request, including any snapshot build it waits on")
	buildTimeout := flag.Duration("build-timeout", 0, "deadline per background snapshot build (0 = none)")
	refresh := flag.Duration("refresh", 0, "background refresh interval for published snapshots (0 = no refresh)")
	noWarm := flag.Bool("no-warm", false, "skip pre-building the headline snapshot; the first queries coalesce onto the cold build instead")
	drain := flag.Duration("drain", 5*time.Second, "bound on draining in-flight requests at shutdown; whatever remains is force-closed")
	dataDir := flag.String("data-dir", "", "directory for durable snapshot archives; restarts warm-start from the last known-good archive (empty = no persistence)")
	peers := flag.String("peers", "", "comma-separated peer base URLs (replicas or a manrs-gw gateway); at boot a snapshot is pulled from the first peer that has one published, skipping the local rebuild")
	snapBudget := flag.Int64("snap-budget", durable.DefaultMaxBytes, "retention budget in bytes for the -data-dir archive directory")
	accessLogSample := flag.Int("access-log-sample", serve.DefaultAccessLogSample, "access-log head sampling: log 1-in-N requests (server errors always logged); 1 logs every request, 0 the default")
	traceCap := flag.Int("trace-cap", 4096, "bound on retained request spans for /debug/trace; 0 disables request tracing")
	adminEP := obsv.AdminFlag(nil)
	flag.Parse()

	cfg := manrsmeter.DefaultConfig(*seed)
	switch *scale {
	case "small", "seed":
		cfg.Tier1s, cfg.LargeISPs, cfg.MediumISPs, cfg.SmallASes, cfg.CDNs = 3, 3, 60, 700, 8
		cfg.MANRSSmall, cfg.MANRSMedium, cfg.MANRSLarge, cfg.MANRSCDNs = 70, 20, 3, 4
	case "full":
	case "large":
		cfg = manrsmeter.LargeConfig(*seed)
	default:
		log.Fatalf("unknown -scale %q (want small, full, or large)", *scale)
	}

	start := time.Now()
	world, err := manrsmeter.GenerateWorld(cfg)
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	log.Printf("generated synthetic Internet: %d ASes, %d MANRS members (%.1fs)",
		world.Graph.NumASes(), world.MANRS.Len(), time.Since(start).Seconds())

	var dstore *durable.Store
	if *dataDir != "" {
		dstore, err = durable.Open(*dataDir, durable.Options{
			MaxBytes: *snapBudget,
			Logf:     log.Printf,
		})
		if err != nil {
			log.Fatalf("open snapshot archive: %v", err)
		}
		log.Printf("durable snapshot archive at %s (budget %d bytes)", dstore.Dir(), *snapBudget)
	}

	serveLog := obsv.NewLogger(os.Stderr, obsv.LevelInfo).With("serve")
	store := serve.NewStore(world, serve.StoreOptions{
		Workers:      *workers,
		BuildTimeout: *buildTimeout,
		Durable:      dstore,
		Logf:         log.Printf,
	})
	// The bounded tracer and the sampled access log are the two halves
	// of request correlation: a traceparent injected by a client (or
	// loadgen) is greppable in the access log and visible in the span
	// tree at /debug/trace under the same trace ID.
	var tracer *obsv.Tracer
	if *traceCap > 0 {
		tracer = obsv.NewBoundedTracer(*traceCap)
	}
	srv := serve.NewServer(store, serve.Options{
		MaxInFlight:     *maxInFlight,
		RequestTimeout:  *requestTimeout,
		Tracer:          tracer,
		AccessLog:       obsv.NewLogger(os.Stderr, obsv.LevelInfo).With("access"),
		AccessLogSample: *accessLogSample,
		Logf: func(format string, args ...any) {
			serveLog.Error(fmt.Sprintf(format, args...))
		},
	})

	// SIGINT/SIGTERM drain; a second signal kills the process via the
	// restored default handler (NotifyContext stops listening once the
	// context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if !*noWarm {
		warmStart := time.Now()
		// Try the durable archive first: a restart serves the last
		// known-good snapshot immediately and rebuilds in the background.
		if restored, err := store.WarmStart(ctx); restored > 0 {
			log.Printf("warm start: %d snapshot(s) restored from archive (%.3fs); fresh rebuild in background",
				restored, time.Since(warmStart).Seconds())
			go func() {
				if err := store.Refresh(ctx, store.DefaultDate()); err != nil && ctx.Err() == nil {
					log.Printf("background rebuild after warm start: %v", err)
				}
			}()
		} else {
			if err != nil {
				log.Printf("warm start from archive failed (%v); falling back", err)
			}
			// Wire replication beats a local rebuild: a replica joining
			// a fleet whose snapshot is already published pulls the
			// archive from a peer (or the gateway's coordinator relay)
			// and catches up in milliseconds instead of rebuilding.
			synced := false
			if *peers != "" {
				var peerList []string
				for _, p := range strings.Split(*peers, ",") {
					if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
						peerList = append(peerList, p)
					}
				}
				if snap, peer, err := store.SyncPeers(ctx, nil, peerList, store.DefaultDate()); err == nil {
					log.Printf("synced snapshot %s from peer %s via wire replication (no local rebuild, %.3fs)",
						snap.Version, peer, time.Since(warmStart).Seconds())
					synced = true
				} else {
					log.Printf("peer sync failed (%v); falling back to a cold build", err)
				}
			}
			if !synced {
				if _, err := store.Get(ctx, store.DefaultDate()); err != nil {
					log.Fatalf("warm headline snapshot: %v", err)
				}
				log.Printf("headline snapshot %s published (%.1fs)",
					store.Version(store.DefaultDate()), time.Since(warmStart).Seconds())
			}
		}
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving conformance queries on http://%s", addr)

	adminLog := obsv.NewLogger(os.Stderr, obsv.LevelInfo).With("admin")
	if adminAddr, err := adminEP.StartAdmin(&obsv.Admin{
		Tracer: tracer,
		Healthz: func() obsv.Health {
			detail := store.Status()
			detail["ready"] = fmt.Sprint(store.Ready())
			return obsv.Health{OK: store.Ready(), Detail: detail}
		},
		Logf: func(format string, args ...any) {
			adminLog.Error(fmt.Sprintf(format, args...))
		},
	}); err != nil {
		log.Fatalf("admin endpoint: %v", err)
	} else if adminAddr != nil {
		log.Printf("admin endpoint on http://%s", adminAddr)
	}

	if *refresh > 0 {
		go store.RefreshLoop(ctx, *refresh)
		log.Printf("background snapshot refresh every %v", *refresh)
	}

	<-ctx.Done()
	log.Printf("shutting down (draining up to %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = srv.Shutdown(drainCtx)
	if aerr := adminEP.Shutdown(drainCtx); aerr != nil {
		log.Printf("shutdown admin: %v", aerr)
	}
	// Let an in-flight snapshot archive finish: losing it only costs
	// the next boot a cold build, but it is cheap to keep.
	store.WaitPersist()
	if err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("drained cleanly")
}
