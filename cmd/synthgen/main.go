// Command synthgen generates a synthetic Internet and writes it out in
// the on-disk formats the paper's pipeline consumes: CAIDA as-rel /
// as2org / prefix2as, a RIPE-style validated-ROA CSV, RPSL dumps of every
// IRR database, a RouteViews-style MRT TABLE_DUMP_V2 RIB snapshot, and
// the MANRS participant list.
//
// Usage:
//
//	synthgen [-seed N] [-scale small|full|large] -out DIR
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"manrsmeter"
	"manrsmeter/internal/bgp/mrt"
	"manrsmeter/internal/ihr"
	"manrsmeter/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synthgen: ")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.String("scale", "small", "world scale: small | full | large (internet-scale, ~75k ASes / ~1M prefixes)")
	out := flag.String("out", "synth-data", "output directory")
	scenName := flag.String("scenario", "", "inject a builtin adversarial scenario before writing archives (as0-hijack, expired-certs, rp-failure, anchor-pairs, roa-delay)")
	scenFile := flag.String("scenario-file", "", "inject a scenario decoded from this file (text or JSON encoding)")
	flag.Parse()

	cfg := manrsmeter.DefaultConfig(*seed)
	switch *scale {
	case "small", "seed":
		cfg.Tier1s, cfg.LargeISPs, cfg.MediumISPs, cfg.SmallASes, cfg.CDNs = 3, 3, 60, 700, 8
		cfg.MANRSSmall, cfg.MANRSMedium, cfg.MANRSLarge, cfg.MANRSCDNs = 70, 20, 3, 4
	case "full":
	case "large":
		cfg = manrsmeter.LargeConfig(*seed)
	default:
		log.Fatalf("unknown -scale %q (want small, full, or large)", *scale)
	}
	world, err := synth.Generate(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	if *scenName != "" || *scenFile != "" {
		// Archives are then written from the mutated fork: the hijack
		// ROAs land in vrps.csv, injected announcements in the MRT RIB,
		// and a failed relying party's VRPs vanish — downstream tools
		// (manrs-audit) see the degraded world.
		var sc *manrsmeter.Scenario
		if *scenFile != "" {
			data, err := os.ReadFile(*scenFile)
			if err != nil {
				log.Fatal(err)
			}
			if sc, err = manrsmeter.DecodeScenario(data); err != nil {
				log.Fatal(err)
			}
		} else if sc, err = manrsmeter.BuiltinScenario(*scenName, world, world.Date(cfg.EndYear)); err != nil {
			log.Fatal(err)
		}
		world, err = manrsmeter.ApplyScenario(world, sc, world.Date(cfg.EndYear))
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("injected scenario %s (%d events)", sc.Name, len(sc.Events))
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	// SIGINT/SIGTERM cancel the run between output files and inside the
	// dataset build (the expensive stage); files already written stay on
	// disk, and no file is left half-written by the cancellation itself.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	write := func(name string, fn func(w io.Writer) error) {
		if err := ctx.Err(); err != nil {
			log.Fatalf("canceled before %s: %v", name, err)
		}
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatalf("write %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("close %s: %v", path, err)
		}
		fmt.Println("wrote", path)
	}

	asOf := world.Date(cfg.EndYear)
	world.SetSnapshot(asOf)

	write("as-rel.txt", world.Graph.WriteASRel)
	write("as2org.txt", world.Graph.WriteAS2Org)
	write("prefix2as.txt", world.Graph.WritePrefix2AS)

	vrps, err := world.VRPsAt(asOf)
	if err != nil {
		log.Fatalf("relying party: %v", err)
	}
	write("vrps.csv", func(f io.Writer) error { return writeVRPs(f, vrps) })

	for _, db := range world.IRRRegistry.Databases() {
		db := db
		write(fmt.Sprintf("irr-%s.db", db.Name), db.Dump)
	}

	write("manrs-participants.csv", func(f io.Writer) error {
		if _, err := fmt.Fprintln(f, "asn,org,program,joined"); err != nil {
			return err
		}
		for _, p := range world.MANRS.Members(asOf) {
			if _, err := fmt.Fprintf(f, "AS%d,%s,%s,%s\n", p.ASN, p.OrgID, p.Program, p.Joined.Format("2006-01-02")); err != nil {
				return err
			}
		}
		return nil
	})

	write("peeringdb.json", world.PeeringDB.WriteJSON)

	ds, err := world.DatasetAtCtx(ctx, asOf, 0)
	if err != nil {
		log.Fatalf("build IHR dataset: %v", err)
	}
	write("ihr-prefix-origins.csv", ds.WritePrefixOriginCSV)
	write("ihr-transits.csv", ds.WriteTransitCSV)

	write("rib.mrt", func(f io.Writer) error { return writeMRT(f, world, ds) })
}

func writeVRPs(f io.Writer, vrps []manrsmeter.VRP) error {
	// Reuse the library's archive writer through the internal package is
	// not possible from main; the format is simple enough to emit here in
	// the same RIPE layout.
	if _, err := fmt.Fprintln(f, "URI,ASN,IP Prefix,Max Length,Not Before,Not After"); err != nil {
		return err
	}
	for _, v := range vrps {
		if _, err := fmt.Fprintf(f, "rsync://rpki.example/repo/%s.roa,AS%d,%s,%d,,\n",
			v.Prefix.Addr(), v.ASN, v.Prefix, v.MaxLength); err != nil {
			return err
		}
	}
	return nil
}

// writeMRT dumps the simulated collector's view: one RIB entry per
// (prefix, vantage point that sees it), exactly how RouteViews archives
// look.
func writeMRT(f io.Writer, world *synth.World, ds *ihr.Dataset) error {
	rpkiIx, irrIx, err := world.IndexesAt(world.Date(world.Config.EndYear))
	if err != nil {
		return err
	}
	filterFor := ihr.PolicyFilter(world.Graph, world.Policies, rpkiIx, irrIx)
	w := mrt.NewWriter(f, world.Date(world.Config.EndYear))
	peers := make([]mrt.Peer, len(world.VantagePoints))
	peerIdx := make(map[uint32]uint16)
	for i, asn := range world.VantagePoints {
		peers[i] = mrt.Peer{
			BGPID: [4]byte{10, 0, byte(i >> 8), byte(i)},
			Addr:  netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
			ASN:   asn,
		}
		peerIdx[asn] = uint16(i)
	}
	if err := w.WritePeerIndexTable([4]byte{192, 0, 2, 1}, "manrsmeter-rib", peers); err != nil {
		return err
	}
	// Recompute vantage paths per visible prefix-origin, under the same
	// filtering policies the dataset builder applied.
	for _, po := range ds.PrefixOrigins {
		tree := world.Graph.Propagate(po.Prefix, po.Origin, filterFor(po.Prefix, po.Origin))
		var entries []mrt.RIBEntry
		for _, vp := range world.VantagePoints {
			path := tree.PathFrom(vp)
			if path == nil {
				continue
			}
			entries = append(entries, mrt.RIBEntry{
				PeerIndex:      peerIdx[vp],
				OriginatedTime: world.Date(world.Config.EndYear),
				Path:           path,
			})
		}
		if len(entries) == 0 {
			continue
		}
		if err := w.WriteRIB(po.Prefix, entries); err != nil {
			return err
		}
	}
	return nil
}
