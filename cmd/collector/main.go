// Command collector runs a RouteViews-style BGP route collector: it
// accepts BGP-4 peerings on a TCP port, absorbs announcements into a
// multi-peer RIB, and writes an MRT TABLE_DUMP_V2 snapshot either
// periodically or on shutdown — input for cmd/hegemony and
// cmd/manrs-audit.
//
// Usage:
//
//	collector -listen 127.0.0.1:1790 -asn 65000 -out rib.mrt [-interval 5m]
//	          [-admin 127.0.0.1:9790]
//
// With -admin ADDR an observability endpoint serves /metrics
// (Prometheus text: routes received/withdrawn, MRT bytes, peer
// sessions), /healthz (live peer and RIB counts) and /debug/pprof/.
// Bind it to loopback: it carries no authentication.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"manrsmeter/internal/bgp/bmp"
	"manrsmeter/internal/bgp/collector"
	"manrsmeter/internal/obsv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("collector: ")
	listen := flag.String("listen", "127.0.0.1:1790", "listen address for BGP peers")
	bmpListen := flag.String("bmp", "", "optional listen address for BMP (RFC 7854) feeds")
	asn := flag.Uint("asn", 65000, "collector AS number")
	out := flag.String("out", "rib.mrt", "MRT snapshot path")
	interval := flag.Duration("interval", 0, "periodic dump interval (0 = dump only on shutdown)")
	holdTime := flag.Duration("hold-time", 90*time.Second, "advertised BGP hold time; silent peers are torn down and their routes withdrawn")
	maxPeers := flag.Int("max-peers", 0, "cap on concurrent peer connections (0 = unlimited)")
	drain := flag.Duration("drain", 5*time.Second, "bound on waiting for peer sessions to wind down at shutdown; whatever remains is force-closed")
	adminEP := obsv.AdminFlag(nil)
	flag.Parse()

	c := collector.New(uint32(*asn), [4]byte{192, 0, 2, 255},
		collector.WithHoldTime(*holdTime),
		collector.WithMaxPeers(*maxPeers))
	addr, err := c.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("AS%d collecting on %s", *asn, addr)

	var station *bmp.Station
	if *bmpListen != "" {
		station = bmp.NewStation()
		bmpAddr, err := station.Listen(*bmpListen)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("accepting BMP feeds on %s", bmpAddr)
	}

	if adminAddr, err := adminEP.Start(func() obsv.Health {
		h := obsv.Health{OK: true, Detail: map[string]string{
			"peers":  fmt.Sprint(c.NumPeers()),
			"routes": fmt.Sprint(c.RIB().Len()),
		}}
		if station != nil {
			h.Detail["bmp_routers"] = fmt.Sprint(len(station.Routers()))
			h.Detail["bmp_peers_up"] = fmt.Sprint(station.PeersUp())
		}
		return h
	}); err != nil {
		log.Fatalf("admin endpoint: %v", err)
	} else if adminAddr != nil {
		log.Printf("admin endpoint on http://%s", adminAddr)
	}

	dump := func() {
		f, err := os.Create(*out)
		if err != nil {
			log.Printf("dump: %v", err)
			return
		}
		if err := c.DumpMRT(f, time.Now().UTC()); err != nil {
			log.Printf("dump: %v", err)
		}
		if station != nil {
			log.Printf("BMP: %d routers, %d peers up, %d routes (BMP routes are tracked separately)",
				len(station.Routers()), station.PeersUp(), station.RIB().Len())
		}
		if err := f.Close(); err != nil {
			log.Printf("dump: %v", err)
			return
		}
		log.Printf("wrote %s: %d peers, %d routes", *out, c.NumPeers(), c.RIB().Len())
	}

	// SIGINT/SIGTERM start a graceful shutdown: the final snapshot is
	// written first (it is the artifact this daemon exists to produce),
	// then live sessions get -drain to wind down before a forced close.
	// A second signal kills the process via the restored default handler.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	shutdown := func() {
		dump()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := c.Shutdown(drainCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if station != nil {
			if err := station.Shutdown(drainCtx); err != nil {
				log.Printf("shutdown BMP: %v", err)
			}
		}
		if err := adminEP.Shutdown(drainCtx); err != nil {
			log.Printf("shutdown admin: %v", err)
		}
	}

	if *interval > 0 {
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				dump()
			case <-ctx.Done():
				log.Printf("shutting down (draining up to %v)", *drain)
				shutdown()
				return
			}
		}
	}
	<-ctx.Done()
	log.Printf("shutting down (draining up to %v)", *drain)
	shutdown()
}
