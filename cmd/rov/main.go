// Command rov validates routes against a VRP archive per RFC 6811.
//
// It reads a validated-ROA CSV (the RIPE archive layout, as written by
// synthgen or internal/rpki.WriteVRPCSV) and classifies routes given
// either on the command line ("prefix,asn" pairs) or on stdin (one
// "prefix asn" pair per line).
//
// Usage:
//
//	rov -vrps vrps.csv 192.0.2.0/24,64500 10.0.0.0/8,64501
//	cat routes.txt | rov -vrps vrps.csv
//
// With -admin ADDR an observability endpoint serves /metrics, /healthz
// and /debug/pprof/ for the duration of the run. Bind it to loopback:
// it carries no authentication.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"manrsmeter/internal/netx"
	"manrsmeter/internal/obsv"
	"manrsmeter/internal/rpki"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rov: ")
	vrpPath := flag.String("vrps", "", "path to the validated-ROA CSV archive (required)")
	adminEP := obsv.AdminFlag(nil)
	flag.Parse()
	if *vrpPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	if adminAddr, err := adminEP.Start(nil); err != nil {
		log.Fatalf("admin endpoint: %v", err)
	} else if adminAddr != nil {
		log.Printf("admin endpoint on http://%s", adminAddr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = adminEP.Shutdown(sctx)
		}()
	}
	f, err := os.Open(*vrpPath)
	if err != nil {
		log.Fatal(err)
	}
	vrps, err := rpki.ReadVRPCSV(f)
	f.Close()
	if err != nil {
		log.Fatalf("read VRPs: %v", err)
	}
	ix, err := rpki.BuildIndex(vrps)
	if err != nil {
		log.Fatalf("index VRPs: %v", err)
	}
	fmt.Printf("loaded %d VRPs\n", len(vrps))

	validate := func(spec string) {
		prefix, asn, err := parseRoute(spec)
		if err != nil {
			log.Printf("skip %q: %v", spec, err)
			return
		}
		fmt.Printf("%s AS%d → %s\n", prefix, asn, ix.Validate(prefix, asn))
	}
	if flag.NArg() > 0 {
		for _, spec := range flag.Args() {
			validate(spec)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		validate(line)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func parseRoute(spec string) (netx.Prefix, uint32, error) {
	fields := strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	if len(fields) != 2 {
		return netx.Prefix{}, 0, fmt.Errorf("want 'prefix,asn'")
	}
	prefix, err := netx.ParsePrefix(fields[0])
	if err != nil {
		return netx.Prefix{}, 0, err
	}
	asnStr := strings.TrimPrefix(strings.TrimPrefix(fields[1], "AS"), "as")
	asn, err := strconv.ParseUint(asnStr, 10, 32)
	if err != nil {
		return netx.Prefix{}, 0, fmt.Errorf("bad ASN %q", fields[1])
	}
	return prefix, uint32(asn), nil
}
