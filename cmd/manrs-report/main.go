// Command manrs-report regenerates every table and figure of the paper's
// evaluation over a freshly generated synthetic Internet and prints them
// to stdout.
//
// Usage:
//
//	manrs-report [-seed N] [-scale small|full] [-skip-stability] [-weeks N]
//	             [-workers N] [-trace] [-cpuprofile FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime/pprof"
	"time"

	"manrsmeter"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manrs-report: ")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.String("scale", "full", "world scale: small | full")
	skipStability := flag.Bool("skip-stability", false, "skip the §8.5 weekly-snapshot analysis")
	weeks := flag.Int("weeks", 12, "weekly snapshots for the stability analysis")
	workers := flag.Int("workers", 0, "worker goroutines for the analysis (0 = one per CPU)")
	trace := flag.Bool("trace", false, "print per-section wall times to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(*seed, *scale, *skipStability, *weeks, *workers, *trace); err != nil {
		pprof.StopCPUProfile() // flush before the non-deferred exit
		log.Fatal(err)
	}
}

func run(seed int64, scale string, skipStability bool, weeks, workers int, trace bool) error {
	cfg := manrsmeter.DefaultConfig(seed)
	if scale == "small" {
		cfg.Tier1s, cfg.LargeISPs, cfg.MediumISPs, cfg.SmallASes, cfg.CDNs = 3, 3, 60, 700, 8
		cfg.MANRSSmall, cfg.MANRSMedium, cfg.MANRSLarge, cfg.MANRSCDNs = 70, 20, 3, 4
	} else if scale != "full" {
		return fmt.Errorf("unknown -scale %q (want small or full)", scale)
	}

	start := time.Now()
	world, err := manrsmeter.GenerateWorld(cfg)
	if err != nil {
		return fmt.Errorf("generate world: %w", err)
	}
	fmt.Printf("generated synthetic Internet: %d ASes, %d MANRS members, %d ROAs, %d IRR objects (%.1fs)\n\n",
		world.Graph.NumASes(), world.MANRS.Len(), world.Repo.NumROAs(),
		world.IRRRegistry.NumRoutes(), time.Since(start).Seconds())

	var traceW io.Writer
	if trace {
		traceW = os.Stderr
	}
	err = manrsmeter.RunReport(os.Stdout, world, manrsmeter.ReportOptions{
		SkipStability:  skipStability,
		StabilityWeeks: weeks,
		Workers:        workers,
		Trace:          traceW,
	})
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}
