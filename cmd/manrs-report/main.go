// Command manrs-report regenerates every table and figure of the paper's
// evaluation over a freshly generated synthetic Internet and prints them
// to stdout.
//
// Usage:
//
//	manrs-report [-seed N] [-scale small|full] [-skip-stability] [-weeks N]
//	             [-workers N] [-trace] [-cpuprofile FILE]
//	             [-timeout D] [-section-timeout D] [-continue-on-error]
//
// SIGINT/SIGTERM cancel the run: in-flight sections are asked to stop,
// and with -continue-on-error the sections already completed are still
// flushed (with a health trailer) before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"manrsmeter"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manrs-report: ")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.String("scale", "full", "world scale: small | full")
	skipStability := flag.Bool("skip-stability", false, "skip the §8.5 weekly-snapshot analysis")
	weeks := flag.Int("weeks", 12, "weekly snapshots for the stability analysis")
	workers := flag.Int("workers", 0, "worker goroutines for the analysis (0 = one per CPU)")
	trace := flag.Bool("trace", false, "print per-section wall times to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	timeout := flag.Duration("timeout", 0, "overall deadline for the whole run (0 = none)")
	sectionTimeout := flag.Duration("section-timeout", 0, "watchdog deadline per report section (0 = none)")
	continueOnError := flag.Bool("continue-on-error", false, "render diagnostic stanzas for failed sections instead of aborting; ends the report with a health trailer")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	// SIGINT/SIGTERM cancel the context; a second signal kills the
	// process via the restored default handler (NotifyContext stops
	// listening once the context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := manrsmeter.ReportOptions{
		SkipStability:   *skipStability,
		StabilityWeeks:  *weeks,
		Workers:         *workers,
		SectionTimeout:  *sectionTimeout,
		ContinueOnError: *continueOnError,
	}
	err := run(ctx, *seed, *scale, opts, *trace)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		pprof.StopCPUProfile()
		log.Fatalf("canceled: %v", err)
	}
	if err != nil {
		pprof.StopCPUProfile() // flush before the non-deferred exit
		log.Fatal(err)
	}
}

func run(ctx context.Context, seed int64, scale string, opts manrsmeter.ReportOptions, trace bool) error {
	cfg := manrsmeter.DefaultConfig(seed)
	if scale == "small" {
		cfg.Tier1s, cfg.LargeISPs, cfg.MediumISPs, cfg.SmallASes, cfg.CDNs = 3, 3, 60, 700, 8
		cfg.MANRSSmall, cfg.MANRSMedium, cfg.MANRSLarge, cfg.MANRSCDNs = 70, 20, 3, 4
	} else if scale != "full" {
		return fmt.Errorf("unknown -scale %q (want small or full)", scale)
	}

	start := time.Now()
	world, err := manrsmeter.GenerateWorld(cfg)
	if err != nil {
		return fmt.Errorf("generate world: %w", err)
	}
	fmt.Printf("generated synthetic Internet: %d ASes, %d MANRS members, %d ROAs, %d IRR objects (%.1fs)\n\n",
		world.Graph.NumASes(), world.MANRS.Len(), world.Repo.NumROAs(),
		world.IRRRegistry.NumRoutes(), time.Since(start).Seconds())

	var traceW io.Writer
	if trace {
		traceW = os.Stderr
	}
	opts.Trace = traceW
	if err := manrsmeter.RunReportCtx(ctx, os.Stdout, world, opts); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}
