// Command manrs-report regenerates every table and figure of the paper's
// evaluation over a freshly generated synthetic Internet and prints them
// to stdout.
//
// Usage:
//
//	manrs-report [-seed N] [-scale small|full] [-skip-stability] [-weeks N]
//	             [-workers N] [-trace] [-cpuprofile FILE] [-admin ADDR]
//	             [-timeout D] [-section-timeout D] [-continue-on-error]
//
// SIGINT/SIGTERM cancel the run: in-flight sections are asked to stop,
// and with -continue-on-error the sections already completed are still
// flushed (with a health trailer) before exit.
//
// With -admin ADDR an observability endpoint serves /metrics (Prometheus
// text), /healthz (live per-section statuses, the same state the health
// trailer renders at the end), /debug/pprof/ and /debug/trace (the span
// tree of the run so far) for the duration of the run. Bind it to
// loopback: it carries no authentication.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"manrsmeter"
	"manrsmeter/internal/obsv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manrs-report: ")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.String("scale", "full", "world scale: small | full")
	skipStability := flag.Bool("skip-stability", false, "skip the §8.5 weekly-snapshot analysis")
	weeks := flag.Int("weeks", 12, "weekly snapshots for the stability analysis")
	workers := flag.Int("workers", 0, "worker goroutines for the analysis (0 = one per CPU)")
	trace := flag.Bool("trace", false, "print the span tree of the run (sections, pipeline, dataset builds) to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	adminEP := obsv.AdminFlag(nil)
	timeout := flag.Duration("timeout", 0, "overall deadline for the whole run (0 = none)")
	sectionTimeout := flag.Duration("section-timeout", 0, "watchdog deadline per report section (0 = none)")
	continueOnError := flag.Bool("continue-on-error", false, "render diagnostic stanzas for failed sections instead of aborting; ends the report with a health trailer")
	flag.Parse()

	// stopProfile flushes and closes the CPU profile exactly once, on
	// whichever exit path runs first (deferred return, cancellation, or
	// error exit before the deferred calls run via log.Fatal).
	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			log.Fatalf("cpuprofile: %v", err)
		}
		var once sync.Once
		stopProfile = func() {
			once.Do(func() {
				pprof.StopCPUProfile()
				if err := f.Close(); err != nil {
					log.Printf("cpuprofile: close: %v", err)
				}
			})
		}
		defer stopProfile()
	}

	// SIGINT/SIGTERM cancel the context; a second signal kills the
	// process via the restored default handler (NotifyContext stops
	// listening once the context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := manrsmeter.ReportOptions{
		SkipStability:   *skipStability,
		StabilityWeeks:  *weeks,
		Workers:         *workers,
		SectionTimeout:  *sectionTimeout,
		ContinueOnError: *continueOnError,
	}
	err := run(ctx, *seed, *scale, opts, *trace, adminEP)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		stopProfile()
		log.Fatalf("canceled: %v", err)
	}
	if err != nil {
		stopProfile() // flush before the non-deferred exit
		log.Fatal(err)
	}
}

// sectionHealth tracks live per-section statuses for /healthz — the
// same states the ContinueOnError health trailer renders at the end of
// the run.
type sectionHealth struct {
	mu       sync.Mutex
	statuses map[string]string
}

func (h *sectionHealth) observe(name, status string, _ time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.statuses == nil {
		h.statuses = make(map[string]string)
	}
	h.statuses[name] = status
}

func (h *sectionHealth) health() obsv.Health {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := obsv.Health{OK: true, Detail: make(map[string]string, len(h.statuses)+1)}
	done := 0
	for name, status := range h.statuses {
		out.Detail["section."+name] = status
		if status != "ok" {
			out.OK = false
		}
		done++
	}
	out.Detail["sections_finished"] = fmt.Sprint(done)
	return out
}

func run(ctx context.Context, seed int64, scale string, opts manrsmeter.ReportOptions, trace bool, adminEP *obsv.AdminEndpoint) error {
	cfg := manrsmeter.DefaultConfig(seed)
	if scale == "small" {
		cfg.Tier1s, cfg.LargeISPs, cfg.MediumISPs, cfg.SmallASes, cfg.CDNs = 3, 3, 60, 700, 8
		cfg.MANRSSmall, cfg.MANRSMedium, cfg.MANRSLarge, cfg.MANRSCDNs = 70, 20, 3, 4
	} else if scale != "full" {
		return fmt.Errorf("unknown -scale %q (want small or full)", scale)
	}

	tracer := obsv.NewTracer()
	health := &sectionHealth{}
	opts.Tracer = tracer
	opts.SectionObserver = health.observe

	if addr, err := adminEP.StartAdmin(&obsv.Admin{Tracer: tracer, Healthz: health.health}); err != nil {
		return fmt.Errorf("admin endpoint: %w", err)
	} else if addr != nil {
		log.Printf("admin endpoint on http://%s", addr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = adminEP.Shutdown(sctx)
		}()
	}

	start := time.Now()
	world, err := manrsmeter.GenerateWorld(cfg)
	if err != nil {
		return fmt.Errorf("generate world: %w", err)
	}
	fmt.Printf("generated synthetic Internet: %d ASes, %d MANRS members, %d ROAs, %d IRR objects (%.1fs)\n\n",
		world.Graph.NumASes(), world.MANRS.Len(), world.Repo.NumROAs(),
		world.IRRRegistry.NumRoutes(), time.Since(start).Seconds())

	reportErr := manrsmeter.RunReportCtx(ctx, os.Stdout, world, opts)
	if trace {
		// The span tree replaces the old flat -trace wall-time lines:
		// sections nest under the report root with their status, and
		// pipeline/dataset builds nest under the sections that paid for
		// them.
		if err := tracer.WriteTree(os.Stderr); err != nil {
			log.Printf("trace: %v", err)
		}
	}
	if reportErr != nil {
		return fmt.Errorf("report: %w", reportErr)
	}
	return nil
}
