// Command manrs-report regenerates every table and figure of the paper's
// evaluation over a freshly generated synthetic Internet and prints them
// to stdout.
//
// Usage:
//
//	manrs-report [-seed N] [-scale small|full] [-skip-stability] [-weeks N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"manrsmeter"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manrs-report: ")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.String("scale", "full", "world scale: small | full")
	skipStability := flag.Bool("skip-stability", false, "skip the §8.5 weekly-snapshot analysis")
	weeks := flag.Int("weeks", 12, "weekly snapshots for the stability analysis")
	flag.Parse()

	cfg := manrsmeter.DefaultConfig(*seed)
	if *scale == "small" {
		cfg.Tier1s, cfg.LargeISPs, cfg.MediumISPs, cfg.SmallASes, cfg.CDNs = 3, 3, 60, 700, 8
		cfg.MANRSSmall, cfg.MANRSMedium, cfg.MANRSLarge, cfg.MANRSCDNs = 70, 20, 3, 4
	} else if *scale != "full" {
		log.Fatalf("unknown -scale %q (want small or full)", *scale)
	}

	start := time.Now()
	world, err := manrsmeter.GenerateWorld(cfg)
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	fmt.Printf("generated synthetic Internet: %d ASes, %d MANRS members, %d ROAs, %d IRR objects (%.1fs)\n\n",
		world.Graph.NumASes(), world.MANRS.Len(), world.Repo.NumROAs(),
		world.IRRRegistry.NumRoutes(), time.Since(start).Seconds())

	err = manrsmeter.RunReport(os.Stdout, world, manrsmeter.ReportOptions{
		SkipStability:  *skipStability,
		StabilityWeeks: *weeks,
	})
	if err != nil {
		log.Fatalf("report: %v", err)
	}
}
