// Command irrd serves IRR databases over the IRRd query protocol, the
// way RADb does. Feed it RPSL dump files (from synthgen or a real
// mirror) and query with the irrd shorthand operators filter-building
// tools use.
//
// Usage:
//
//	irrd -listen 127.0.0.1:4343 [-admin 127.0.0.1:9343] ripe.db radb.db
//	irrd -query '!gAS64500' ripe.db             # one-shot, no server
//
// With -admin ADDR an observability endpoint serves /metrics
// (Prometheus text, including irr_query_seconds latency), /healthz and
// /debug/pprof/. Bind it to loopback: it carries no authentication.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"manrsmeter/internal/irr"
	"manrsmeter/internal/obsv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("irrd: ")
	listen := flag.String("listen", "127.0.0.1:4343", "listen address")
	query := flag.String("query", "", "answer one query against the loaded databases and exit")
	drain := flag.Duration("drain", 5*time.Second, "bound on waiting for in-flight queries at shutdown; whatever remains is force-closed")
	adminEP := obsv.AdminFlag(nil)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("no database dumps given")
	}

	registry := irr.NewRegistry()
	for _, path := range flag.Args() {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		name = strings.TrimPrefix(name, "irr-")
		db := irr.NewDatabase(name)
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		skipped, err := db.Load(f)
		f.Close()
		if err != nil {
			log.Fatalf("load %s: %v", path, err)
		}
		log.Printf("loaded %s: %d objects, %d routes (%d malformed skipped)",
			db.Name, db.NumObjects(), len(db.Routes()), skipped)
		registry.AddDatabase(db)
	}

	// Surface objects the merged validation index cannot hold before
	// serving, rather than panicking mid-query.
	if _, err := registry.Index(); err != nil {
		log.Printf("warning: some IRR objects not indexable: %v", err)
	}

	srv := irr.NewQueryServer(registry)
	if *query != "" {
		fmt.Print(srv.Answer(*query))
		return
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d route objects on %s", registry.NumRoutes(), addr)

	if adminAddr, err := adminEP.Start(func() obsv.Health {
		return obsv.Health{OK: true, Detail: map[string]string{
			"databases": fmt.Sprint(flag.NArg()),
			"routes":    fmt.Sprint(registry.NumRoutes()),
		}}
	}); err != nil {
		log.Fatalf("admin endpoint: %v", err)
	} else if adminAddr != nil {
		log.Printf("admin endpoint on http://%s", adminAddr)
	}

	// SIGINT/SIGTERM drain in-flight queries for up to -drain before
	// force-closing them; a second signal kills the process via the
	// restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down (draining up to %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = srv.Shutdown(drainCtx)
	if aerr := adminEP.Shutdown(drainCtx); aerr != nil {
		log.Printf("shutdown admin: %v", aerr)
	}
	if err != nil {
		log.Fatal(err)
	}
}
