// Command loadgen drives a running manrsd with a seeded, reproducible
// workload and reports the SLO latency trajectory: p50/p90/p99/p99.9,
// throughput, shed rate, error rate, and 304 revalidation rate.
//
// Usage:
//
//	loadgen -base http://127.0.0.1:8180 [-targets URL,URL,...]
//	        [-seed N] [-workers N]
//	        [-requests N] [-warmup-requests N] [-duration D] [-qps R]
//	        [-ramp D] [-mix as=40,prefix=25,stats=15,report=10,scenario=10]
//	        [-asn-base N] [-asn-count N] [-zipf-s S] [-zipf-v V]
//	        [-revalidate P] [-timeout D]
//	        [-bench-out FILE] [-bench-name NAME]
//	        [-slo-p99 D] [-max-5xx N]
//
// The workload is a pure function of -seed (closed loop): the same
// flags issue the same multiset of URLs with the same traceparent IDs,
// so a run is a benchmark, not an anecdote. -qps switches to open loop
// (Poisson arrivals), where latency is measured from the scheduled
// arrival — queueing delay is charged to the server, not hidden.
//
// Every request carries a W3C traceparent; the first trace ID is
// printed so it can be grepped in manrsd's access log and span tree.
//
// Exit status: 0 on success; 1 on usage or transport-level failure to
// run at all; 3 when -slo-p99 is set and the measured p99 exceeds it;
// 4 when -max-5xx is set and server errors (5xx excluding 503 shed,
// plus transport errors) exceed it.
//
// With -bench-out the run is also recorded as a BENCH_*.json document
// (integer fields, rates in parts-per-million) compatible with the
// repository's benchmark tooling; the commit recorded is $BENCH_COMMIT
// when set.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"manrsmeter/internal/loadgen"
)

// parseMix reads "as=40,prefix=25,stats=15,report=10,scenario=10";
// omitted routes get weight zero, an empty string means the default.
func parseMix(s string) (loadgen.RouteMix, error) {
	if s == "" {
		return loadgen.DefaultMix, nil
	}
	var m loadgen.RouteMix
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad mix element %q: want route=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		switch key {
		case "as":
			m.AS = w
		case "prefix":
			m.Prefix = w
		case "stats":
			m.Stats = w
		case "report":
			m.Report = w
		case "scenario":
			m.Scenario = w
		default:
			return m, fmt.Errorf("unknown mix route %q (want as, prefix, stats, report, scenario)", key)
		}
	}
	return m, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	base := flag.String("base", "http://127.0.0.1:8180", "manrsd base URL")
	targets := flag.String("targets", "", "comma-separated base URLs to spread the workload across (a gateway plus replicas, say); overrides -base and adds a per-target breakdown to the summary and BENCH json")
	seed := flag.Int64("seed", 1, "workload seed; same seed, same requests")
	workers := flag.Int("workers", 8, "concurrent workers (closed loop: offered load; open loop: in-flight cap)")
	requests := flag.Int("requests", 1000, "measured request budget (ignored with -duration)")
	warmup := flag.Int("warmup-requests", 0, "requests issued before measurement starts (cache fill, snapshot build)")
	duration := flag.Duration("duration", 0, "measured wall time instead of a request budget")
	qps := flag.Float64("qps", 0, "open-loop Poisson arrival rate (0 = closed loop)")
	ramp := flag.Duration("ramp", 0, "closed-loop stagger between worker starts")
	mixFlag := flag.String("mix", "", "route weights, e.g. as=40,prefix=25,stats=15,report=10,scenario=10")
	asnBase := flag.Int("asn-base", 100, "first ASN of the synthetic world")
	asnCount := flag.Int("asn-count", 1000, "ASN population to draw from")
	zipfS := flag.Float64("zipf-s", 1.2, "zipf exponent s (> 1); larger = hotter head")
	zipfV := flag.Float64("zipf-v", 1, "zipf offset v (≥ 1)")
	revalidate := flag.Float64("revalidate", 0.25, "probability a known URL is re-requested with If-None-Match")
	timeout := flag.Duration("timeout", 15*time.Second, "per-request deadline")
	benchOut := flag.String("bench-out", "", "write the machine-readable BENCH json here")
	benchName := flag.String("bench-name", "LoadgenServeLatency", "name field of the BENCH json")
	sloP99 := flag.Duration("slo-p99", 0, "fail (exit 3) when measured p99 exceeds this")
	max5xx := flag.Int64("max-5xx", -1, "fail (exit 4) when server errors exceed this (-1 = no gate; 503 shed excluded)")
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var targetList []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
			targetList = append(targetList, t)
		}
	}

	cfg := loadgen.Config{
		BaseURL:        strings.TrimRight(*base, "/"),
		Targets:        targetList,
		Seed:           *seed,
		Workers:        *workers,
		Ramp:           *ramp,
		WarmupRequests: *warmup,
		Requests:       *requests,
		Duration:       *duration,
		QPS:            *qps,
		Mix:            mix,
		ASNBase:        *asnBase,
		ASNCount:       *asnCount,
		ZipfS:          *zipfS,
		ZipfV:          *zipfV,
		Revalidate:     *revalidate,
		Timeout:        *timeout,
	}
	mode := "closed"
	if *qps > 0 {
		mode = fmt.Sprintf("open @ %.0f qps", *qps)
	}
	driving := cfg.BaseURL
	if len(targetList) > 0 {
		driving = strings.Join(targetList, ", ")
	}
	log.Printf("driving %s: %d workers, %s loop, seed %d", driving, cfg.Workers, mode, cfg.Seed)

	start := time.Now()
	res, err := loadgen.Run(ctx, cfg)
	if err != nil && res == nil {
		log.Fatal(err)
	}
	if err != nil {
		log.Printf("interrupted after %v: %v", time.Since(start).Round(time.Millisecond), err)
	}
	if res.Measured == 0 {
		log.Fatal("no measured requests completed")
	}
	res.WriteSummary(os.Stdout)

	if *benchOut != "" {
		commit := os.Getenv("BENCH_COMMIT")
		if commit == "" {
			commit = "unknown"
		}
		doc := res.Bench(*benchName, commit, runtime.Version(), time.Now())
		body, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("encode bench json: %v", err)
		}
		if err := os.WriteFile(*benchOut, append(body, '\n'), 0o644); err != nil {
			log.Fatalf("write %s: %v", *benchOut, err)
		}
		log.Printf("bench record written to %s", *benchOut)
	}

	exit := 0
	if *sloP99 > 0 {
		p99 := time.Duration(res.Hist.Quantile(0.99) * float64(time.Second))
		if p99 > *sloP99 {
			log.Printf("SLO VIOLATION: p99 %v > budget %v", p99.Round(time.Microsecond), *sloP99)
			exit = 3
		} else {
			log.Printf("SLO ok: p99 %v ≤ budget %v", p99.Round(time.Microsecond), *sloP99)
		}
	}
	if *max5xx >= 0 {
		if bad := res.ServerErrors + res.Errors; bad > *max5xx {
			log.Printf("ERROR BUDGET EXCEEDED: %d server/transport errors > %d allowed (shed 503s excluded: %d)",
				bad, *max5xx, res.Shed)
			exit = 4
		}
	}
	os.Exit(exit)
}
