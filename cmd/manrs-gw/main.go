// Command manrs-gw fronts a fleet of manrsd replicas with a stateless
// consistent-hash gateway: /v1 queries route to the replica owning the
// query's shard key (ASN or prefix) on a deterministic rendezvous
// ring, so each entity's queries concentrate on one replica's hot
// cache while the fleet shares the total load.
//
// Usage:
//
//	manrs-gw -replicas http://h1:8180,http://h2:8180,http://h3:8180
//	         [-listen 127.0.0.1:8170] [-ring-seed N]
//	         [-probe-interval D] [-probe-timeout D]
//	         [-fail-after N] [-rise-after N]
//	         [-max-inflight N] [-request-timeout D] [-drain D]
//	         [-admin 127.0.0.1:9170] [-access-log-sample N]
//
// Failure model: replica health is probed every -probe-interval with
// hysteresis (-fail-after consecutive failures demote, -rise-after
// promote), and connect failures seen while proxying count as failed
// probes, so a dead replica leaves the ring within a probe or two.
// Idempotent GETs are retried once on a distinct replica after a
// connect failure or 503; requests past -max-inflight, or arriving
// while no replica is live, are shed with 503 + Retry-After. The
// gateway never rewrites replica answers — fingerprint-scoped ETags
// are identical across replicas of one world, which keeps 200/304
// revalidation coherent no matter which replica answers — and a
// replica serving an unexpected snapshot version for a date raises
// cluster_version_mismatch_total instead of silently mixing worlds.
//
// The gateway is also the replication coordinator: GET /cluster/snapshot
// (aliased at /peer/snapshot, so a replica's -peers flag can point
// here) relays a published snapshot archive from a live replica, which
// is how a lagging replica catches up without a local rebuild.
//
// Every proxied request carries a W3C traceparent (honored or minted),
// echoed downstream and back, so one trace ID correlates the load
// generator, the gateway access log, and the owning replica's access
// log. With -admin the usual observability endpoint serves /metrics
// (per-replica RED series, ring gauges), /healthz, and pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"manrsmeter/internal/cluster"
	"manrsmeter/internal/obsv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manrs-gw: ")
	replicasFlag := flag.String("replicas", "", "comma-separated replica base URLs (required), e.g. http://127.0.0.1:8180,http://127.0.0.1:8181")
	listen := flag.String("listen", "127.0.0.1:8170", "listen address for the gateway")
	ringSeed := flag.Uint64("ring-seed", 1, "rendezvous ring seed; fleet-wide constant so every gateway instance routes identically")
	probeInterval := flag.Duration("probe-interval", cluster.DefaultProbeInterval, "replica health-check period")
	probeTimeout := flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "deadline per health probe")
	failAfter := flag.Int("fail-after", cluster.DefaultFailAfter, "consecutive failed observations before a replica leaves the ring")
	riseAfter := flag.Int("rise-after", cluster.DefaultRiseAfter, "consecutive successful probes before a demoted replica rejoins")
	maxInFlight := flag.Int("max-inflight", cluster.DefaultMaxInFlight, "admission limit on concurrently proxied requests; arrivals beyond it are shed with 503")
	requestTimeout := flag.Duration("request-timeout", cluster.DefaultRequestTimeout, "end-to-end deadline per proxied request, retry included")
	drain := flag.Duration("drain", 5*time.Second, "bound on draining in-flight requests at shutdown")
	accessLogSample := flag.Int("access-log-sample", 1, "access-log head sampling: log 1-in-N proxied requests (errors always logged)")
	adminEP := obsv.AdminFlag(nil)
	flag.Parse()

	var replicas []string
	for _, r := range strings.Split(*replicasFlag, ",") {
		r = strings.TrimRight(strings.TrimSpace(r), "/")
		if r != "" {
			replicas = append(replicas, r)
		}
	}
	if len(replicas) == 0 {
		log.Fatal("at least one -replicas URL is required")
	}

	gwLog := obsv.NewLogger(os.Stderr, obsv.LevelInfo).With("cluster")
	ring := cluster.NewRing(*ringSeed, replicas...)
	members := cluster.NewMembership(ring, replicas, cluster.MembershipOptions{
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailAfter:     *failAfter,
		RiseAfter:     *riseAfter,
		Logf:          log.Printf,
	})
	gw := cluster.NewGateway(members, cluster.GatewayOptions{
		MaxInFlight:     *maxInFlight,
		RequestTimeout:  *requestTimeout,
		AccessLog:       obsv.NewLogger(os.Stderr, obsv.LevelInfo).With("access"),
		AccessLogSample: *accessLogSample,
		Logf: func(format string, args ...any) {
			gwLog.Warn(fmt.Sprintf(format, args...))
		},
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go members.Start(ctx)

	addr, err := gw.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("gateway serving on http://%s over %d replicas (ring seed %d)", addr, len(replicas), *ringSeed)

	adminLog := obsv.NewLogger(os.Stderr, obsv.LevelInfo).With("admin")
	if adminAddr, err := adminEP.StartAdmin(&obsv.Admin{
		Healthz: func() obsv.Health {
			live := members.Live()
			detail := map[string]string{"live": fmt.Sprint(len(live))}
			for _, r := range members.Replicas() {
				state := "down"
				if members.Up(r) {
					state = "up"
				}
				detail["replica."+r] = state
			}
			return obsv.Health{OK: len(live) > 0, Detail: detail}
		},
		Logf: func(format string, args ...any) {
			adminLog.Error(fmt.Sprintf(format, args...))
		},
	}); err != nil {
		log.Fatalf("admin endpoint: %v", err)
	} else if adminAddr != nil {
		log.Printf("admin endpoint on http://%s", adminAddr)
	}

	<-ctx.Done()
	log.Printf("shutting down (draining up to %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = gw.Shutdown(drainCtx)
	if aerr := adminEP.Shutdown(drainCtx); aerr != nil {
		log.Printf("shutdown admin: %v", aerr)
	}
	if err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("drained cleanly")
}
