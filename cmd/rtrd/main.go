// Command rtrd serves a validated-ROA snapshot to routers over the
// RPKI-to-Router protocol (RFC 8210), like Routinator or StayRTR. Feed
// it a VRP CSV (from synthgen or a real archive) and point an RTR client
// at it; rtrd -fetch acts as that client for testing.
//
// Usage:
//
//	rtrd -vrps vrps.csv -listen 127.0.0.1:8282 [-admin 127.0.0.1:9282]
//	rtrd -fetch 127.0.0.1:8282
//
// With -admin ADDR an observability endpoint serves /metrics
// (Prometheus text), /healthz (session/serial state) and
// /debug/pprof/. Bind it to loopback: it carries no authentication.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"manrsmeter/internal/obsv"
	"manrsmeter/internal/rpki"
	"manrsmeter/internal/rpki/rtr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtrd: ")
	vrpPath := flag.String("vrps", "", "validated-ROA CSV to serve")
	listen := flag.String("listen", "127.0.0.1:8282", "listen address")
	fetch := flag.String("fetch", "", "act as a client: fetch a snapshot from this cache and print it")
	retries := flag.Int("retries", 5, "with -fetch: dial attempts before giving up (cache may be restarting)")
	timeout := flag.Duration("timeout", 30*time.Second, "with -fetch: overall fetch deadline")
	drain := flag.Duration("drain", 5*time.Second, "bound on waiting for client sessions to finish at shutdown; whatever remains is force-closed")
	adminEP := obsv.AdminFlag(nil)
	flag.Parse()

	if *fetch != "" {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		res, err := rtr.FetchRetry(ctx, *fetch, *retries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session %d serial %d: %d VRPs\n", res.Session, res.Serial, len(res.VRPs))
		for _, v := range res.VRPs {
			fmt.Printf("%s AS%d max /%d\n", v.Prefix, v.ASN, v.MaxLength)
		}
		return
	}

	if *vrpPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*vrpPath)
	if err != nil {
		log.Fatal(err)
	}
	vrps, err := rpki.ReadVRPCSV(f)
	f.Close()
	if err != nil {
		log.Fatalf("read VRPs: %v", err)
	}
	srv := rtr.NewServer(vrps)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d VRPs on %s (RTR v%d)", len(vrps), addr, rtr.Version)

	if adminAddr, err := adminEP.Start(func() obsv.Health {
		return obsv.Health{OK: true, Detail: map[string]string{
			"serial": fmt.Sprint(srv.Serial()),
			"vrps":   fmt.Sprint(len(vrps)),
		}}
	}); err != nil {
		log.Fatalf("admin endpoint: %v", err)
	} else if adminAddr != nil {
		log.Printf("admin endpoint on http://%s", adminAddr)
	}

	// SIGINT/SIGTERM drain client sessions for up to -drain before
	// force-closing them; a second signal kills the process via the
	// restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down (draining up to %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = srv.Shutdown(drainCtx)
	if aerr := adminEP.Shutdown(drainCtx); aerr != nil {
		log.Printf("shutdown admin: %v", aerr)
	}
	if err != nil {
		log.Fatal(err)
	}
}
