// Command manrs-audit runs the paper's conformance analysis from on-disk
// archives — the workflow of the real study, which consumed RouteViews
// MRT dumps, RPKI VRP archives, IRR snapshots, CAIDA as-rel and the
// MANRS participant list. Point it at a directory written by synthgen
// (or assembled from real archives in the same formats) and it prints an
// Action 1 / Action 4 scorecard for every participant.
//
// Usage:
//
//	synthgen -out data/
//	manrs-audit -data data/ [-asn 64500] [-unconformant-only]
//
// With -scenario NAME (no -data needed) it instead generates a world,
// injects the named adversarial scenario — as0-hijack, expired-certs,
// rp-failure, anchor-pairs, roa-delay, or a scenario file via
// -scenario-file — into a copy-on-write fork, and prints the measured
// degradation against the untouched baseline, ending in the health
// trailer:
//
//	manrs-audit -scenario as0-hijack [-seed 8] [-scale seed|large] [-workers N]
//
// With -admin ADDR an observability endpoint serves /metrics, /healthz
// and /debug/pprof/ for the duration of the audit. Bind it to
// loopback: it carries no authentication.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"manrsmeter"
	"manrsmeter/internal/astopo"
	"manrsmeter/internal/bgp/mrt"
	"manrsmeter/internal/ihr"
	"manrsmeter/internal/irr"
	"manrsmeter/internal/manrs"
	"manrsmeter/internal/obsv"
	"manrsmeter/internal/peeringdb"
	"manrsmeter/internal/rov"
	"manrsmeter/internal/rpki"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manrs-audit: ")
	dataDir := flag.String("data", "", "directory of archives (as written by synthgen)")
	asnFlag := flag.Uint("asn", 0, "audit only this AS")
	unconfOnly := flag.Bool("unconformant-only", false, "print only unconformant participants")
	asOfFlag := flag.String("asof", "2022-05-01", "evaluation date for freshness checks (YYYY-MM-DD)")
	scenName := flag.String("scenario", "", "run a builtin adversarial scenario against a generated world (see -scenario list)")
	scenFile := flag.String("scenario-file", "", "run a scenario decoded from this file (text or JSON encoding)")
	seed := flag.Int64("seed", 8, "generator seed for -scenario mode")
	scale := flag.String("scale", "seed", "generator preset for -scenario mode: seed|large")
	workers := flag.Int("workers", 0, "dataset build parallelism for -scenario mode (<=0: one per CPU)")
	adminEP := obsv.AdminFlag(nil)
	flag.Parse()
	if *dataDir == "" && *scenName == "" && *scenFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	asOf, err := time.Parse("2006-01-02", *asOfFlag)
	if err != nil {
		log.Fatalf("bad -asof: %v", err)
	}

	if adminAddr, err := adminEP.Start(nil); err != nil {
		log.Fatalf("admin endpoint: %v", err)
	} else if adminAddr != nil {
		log.Printf("admin endpoint on http://%s", adminAddr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = adminEP.Shutdown(sctx)
		}()
	}

	if *scenName != "" || *scenFile != "" {
		runScenario(*scenName, *scenFile, *seed, *scale, *workers)
		return
	}

	// 1. Topology (CAIDA as-rel).
	graph := astopo.NewGraph()
	mustOpen(*dataDir, "as-rel.txt", func(f *os.File) error { return graph.ReadASRel(f) })

	// 2. RPKI VRPs.
	var rpkiIx *rov.Index
	mustOpen(*dataDir, "vrps.csv", func(f *os.File) error {
		vrps, err := rpki.ReadVRPCSV(f)
		if err != nil {
			return err
		}
		rpkiIx, err = rpki.BuildIndex(vrps)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d VRPs\n", len(vrps))
		return nil
	})

	// 3. IRR snapshots.
	registry := irr.NewRegistry()
	matches, err := filepath.Glob(filepath.Join(*dataDir, "irr-*.db"))
	if err != nil || len(matches) == 0 {
		log.Fatalf("no IRR dumps found in %s", *dataDir)
	}
	for _, path := range matches {
		name := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "irr-"), ".db")
		db := irr.NewDatabase(name)
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := db.Load(f); err != nil {
			log.Fatalf("load %s: %v", path, err)
		}
		f.Close()
		registry.AddDatabase(db)
	}
	fmt.Printf("loaded %d IRR route objects from %d databases\n", registry.NumRoutes(), len(matches))

	// 3b. PeeringDB contact snapshot (Action 3), when present.
	contacts := peeringdb.NewRegistry()
	if f, err := os.Open(filepath.Join(*dataDir, "peeringdb.json")); err == nil {
		n, err := contacts.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("peeringdb.json: %v", err)
		}
		fmt.Printf("loaded %d contact records\n", n)
	}

	// 4. Participant list.
	participants := loadParticipants(filepath.Join(*dataDir, "manrs-participants.csv"))
	fmt.Printf("loaded %d MANRS participants\n", len(participants))

	// 5. BGP view (MRT RIB) → IHR datasets → per-AS metrics.
	var dump *mrt.Dump
	mustOpen(*dataDir, "rib.mrt", func(f *os.File) error {
		br := bufio.NewReaderSize(f, 1<<20)
		var err error
		dump, err = mrt.NewReader(br).ReadAll()
		return err
	})
	fmt.Printf("loaded RIB: %d peers, %d records\n\n", len(dump.Peers), len(dump.Records))

	irrIx, err := registry.Index()
	if err != nil {
		log.Printf("warning: some IRR objects not indexable: %v", err)
	}
	ds, err := ihr.FromMRT(dump, graph, rpkiIx, irrIx, 0)
	if err != nil {
		log.Fatal(err)
	}
	metrics := manrs.ComputeMetrics(ds)

	// 6. Audit.
	sort.Slice(participants, func(i, j int) bool { return participants[i].ASN < participants[j].ASN })
	audited, unconf := 0, 0
	for _, part := range participants {
		if *asnFlag != 0 && part.ASN != uint32(*asnFlag) {
			continue
		}
		m := metrics[part.ASN]
		a4 := manrs.Action4Conformant(m, part.Program)
		a1 := manrs.Action1Conformant(m)
		a3 := contacts.Len() == 0 || contacts.Action3Conformant(part.ASN, asOf, 0)
		audited++
		if !a4 || !a1 || !a3 {
			unconf++
		} else if *unconfOnly {
			continue
		}
		printRow(part, m, a4, a1, a3)
	}
	fmt.Printf("\naudited %d participants, %d unconformant\n", audited, unconf)
}

// runScenario is the -scenario mode: generate a world, inject the
// adversarial scenario into a copy-on-write fork, and print the
// measured degradation vs the untouched baseline.
func runScenario(name, file string, seed int64, scale string, workers int) {
	if name == "list" {
		for _, n := range manrsmeter.ScenarioNames() {
			fmt.Println(n)
		}
		return
	}
	cfg := manrsmeter.DefaultConfig(seed)
	if scale == "large" {
		cfg = manrsmeter.LargeConfig(seed)
	} else if scale != "seed" {
		log.Fatalf("bad -scale %q: want seed or large", scale)
	}
	log.Printf("generating world (seed %d, scale %s)", seed, scale)
	world, err := manrsmeter.GenerateWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var sc *manrsmeter.Scenario
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			log.Fatal(err)
		}
		if sc, err = manrsmeter.DecodeScenario(data); err != nil {
			log.Fatal(err)
		}
	} else {
		if sc, err = manrsmeter.BuiltinScenario(name, world, time.Time{}); err != nil {
			log.Fatal(err)
		}
	}

	res, err := manrsmeter.RunScenario(context.Background(), world, sc,
		manrsmeter.ScenarioOptions{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
}

func mustOpen(dir, name string, fn func(*os.File) error) {
	path := filepath.Join(dir, name)
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
}

func loadParticipants(path string) []manrs.Participant {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var out []manrs.Participant
	sc := bufio.NewScanner(f)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if first || line == "" {
			first = false
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 4 {
			log.Fatalf("bad participant line %q", line)
		}
		asn, err := strconv.ParseUint(strings.TrimPrefix(fields[0], "AS"), 10, 32)
		if err != nil {
			log.Fatalf("bad ASN %q", fields[0])
		}
		prog := manrs.ProgramISP
		if fields[2] == "CDN" {
			prog = manrs.ProgramCDN
		}
		joined, err := time.Parse("2006-01-02", fields[3])
		if err != nil {
			log.Fatalf("bad join date %q", fields[3])
		}
		out = append(out, manrs.Participant{ASN: uint32(asn), OrgID: fields[1], Program: prog, Joined: joined})
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return out
}

func printRow(part manrs.Participant, m *manrs.ASMetrics, a4, a1, a3 bool) {
	status := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	originated, og := 0, "n/a"
	propagated, pg := 0, "n/a"
	if m != nil {
		originated = m.Originated
		propagated = m.PropCustomer
		if m.Originated > 0 && !math.IsNaN(m.OGConformant()) {
			og = fmt.Sprintf("%.1f%%", m.OGConformant())
		}
		if m.PropCustomer > 0 && !math.IsNaN(m.PGUnconformant()) {
			pg = fmt.Sprintf("%.1f%%", m.PGUnconformant())
		}
	}
	fmt.Printf("AS%-7d %-4s joined %s  A4[%s] %3d prefixes, %s conformant  A1[%s] %d customer routes, %s unconformant  A3[%s]\n",
		part.ASN, part.Program, part.Joined.Format("2006-01"),
		status(a4), originated, og, status(a1), propagated, pg, status(a3))
}
