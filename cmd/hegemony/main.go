// Command hegemony computes AS hegemony scores from an MRT TABLE_DUMP_V2
// RIB snapshot (as written by synthgen or fetched from a route
// collector): for each prefix, the trimmed-mean fraction of peer paths
// crossing each transit AS.
//
// Usage:
//
//	hegemony -rib rib.mrt [-prefix 192.0.2.0/24] [-top N]
//
// With -admin ADDR an observability endpoint serves /metrics, /healthz
// and /debug/pprof/ for the duration of the run. Bind it to loopback:
// it carries no authentication.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"manrsmeter/internal/bgp/mrt"
	"manrsmeter/internal/hegemony"
	"manrsmeter/internal/netx"
	"manrsmeter/internal/obsv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hegemony: ")
	ribPath := flag.String("rib", "", "path to an MRT TABLE_DUMP_V2 file (required)")
	prefixArg := flag.String("prefix", "", "only report this prefix")
	top := flag.Int("top", 5, "transit ASes to print per prefix")
	trim := flag.Float64("trim", hegemony.DefaultTrim, "trimming fraction")
	adminEP := obsv.AdminFlag(nil)
	flag.Parse()
	if *ribPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	if adminAddr, err := adminEP.Start(nil); err != nil {
		log.Fatalf("admin endpoint: %v", err)
	} else if adminAddr != nil {
		log.Printf("admin endpoint on http://%s", adminAddr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = adminEP.Shutdown(sctx)
		}()
	}
	f, err := os.Open(*ribPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	dump, err := mrt.NewReader(f).ReadAll()
	if err != nil {
		log.Fatalf("read MRT: %v", err)
	}
	fmt.Printf("collector %q: %d peers, %d RIB records\n", dump.ViewName, len(dump.Peers), len(dump.Records))

	var only netx.Prefix
	if *prefixArg != "" {
		only, err = netx.ParsePrefix(*prefixArg)
		if err != nil {
			log.Fatal(err)
		}
	}
	records := dump.Records
	sort.Slice(records, func(i, j int) bool { return records[i].Prefix.Compare(records[j].Prefix) < 0 })
	for _, rec := range records {
		if only.IsValid() && rec.Prefix != only {
			continue
		}
		// Each RIB entry is one peer's path; hegemony treats the peer AS
		// as the vantage point (paths in the dump already start there).
		paths := make([][]uint32, 0, len(rec.Entries))
		for _, e := range rec.Entries {
			paths = append(paths, e.Path)
		}
		scores := hegemony.Ranked(hegemony.Scores(paths, *trim))
		fmt.Printf("%s (%d paths):", rec.Prefix, len(paths))
		for i, s := range scores {
			if i >= *top {
				break
			}
			fmt.Printf(" AS%d=%.2f", s.ASN, s.Hegemony)
		}
		fmt.Println()
	}
}
